"""Unit tests for the per-cluster synopsis (collection, persistence,
invalidation, and the paper-example pruning guarantees)."""

import pytest

from repro import Database, DiskGeometry, EvalOptions, ImportOptions
from repro.axes import Axis
from repro.algebra.steps import CompiledNodeTest, CompiledStep
from repro.storage import persist
from repro.storage.synopsis import (
    CHILD_TRANSIT,
    HAS_DOWN,
    HAS_UPSIDE,
    ClusterSynopsis,
    cost_effective_skips,
)
from repro.storage.store import recollect_synopsis
from repro.storage.update import insert_node

from tests.conftest import make_random_tree, small_database
from tests.paper_tree import PAGE_A, PAGE_B, PAGE_C, PAGE_D, build_paper_tree


def _step(tags, axis, name):
    return CompiledStep(axis, CompiledNodeTest.compile("name", axis, tags.lookup(name)))


# ------------------------------------------------------------- collection


def test_import_collects_synopsis():
    db, _ = small_database(seed=71, n_top=40, fragmentation=1.0)
    doc = db.document("d")
    synopsis = doc.synopsis
    assert synopsis is not None
    assert synopsis.n_clusters == doc.n_pages
    # occupancy counts every core record exactly once
    assert synopsis.n_records == doc.n_nodes
    assert sum(synopsis.occupancy(p) for p in doc.page_nos) == doc.n_nodes
    assert synopsis.mean_occupancy() >= 1.0


def test_recollect_matches_import_time_synopsis():
    db, _ = small_database(seed=72, n_top=30)
    doc = db.document("d")
    collected = doc.synopsis
    recollected = recollect_synopsis(db.store, doc)
    assert recollected == collected
    assert doc.synopsis is recollected


def test_paper_tree_rows():
    paper = build_paper_tree()
    synopsis = recollect_synopsis(paper.db.store, paper.doc)
    tags = paper.db.tags
    tag_a, tag_b, tag_x = (tags.lookup(t) for t in ("A", "B", "X"))
    rows = synopsis.rows()
    # cluster a: up-border entering at a2:A; holds A and B
    tag_bits, entry_bits, flags, occupancy = rows[PAGE_A]
    assert flags == HAS_UPSIDE
    assert occupancy == 2
    assert tag_bits >> tag_a & 1 and tag_bits >> tag_b & 1
    assert entry_bits == 1 << tag_a
    # cluster b: up-border entering at b2:X; holds only X
    tag_bits, entry_bits, flags, occupancy = rows[PAGE_B]
    assert flags == HAS_UPSIDE
    assert tag_bits == 1 << tag_x
    assert entry_bits == 1 << tag_x
    # cluster d holds the root and three down borders, no up-side entry
    _, _, flags, _ = rows[PAGE_D]
    assert flags & HAS_DOWN
    assert not flags & HAS_UPSIDE
    assert not flags & CHILD_TRANSIT


# ------------------------------------------------- paper example 6 pruning


def test_paper_example_never_processes_cluster_b():
    """Example 6/7: for ``/A//B`` cluster b (one X node) can contribute to
    neither step — the synopsis proves it.  On a seek-free disk the scan
    skips the page outright; on the default disk the skip-scan break-even
    keeps streaming through the isolated 512-byte page (a seek costs more
    than the transfer) but every speculation round in it is skipped."""
    paper = build_paper_tree()
    synopsis = recollect_synopsis(paper.db.store, paper.doc)
    tags = paper.db.tags
    child_a = _step(tags, Axis.CHILD, "A")
    desc_b = _step(tags, Axis.DESCENDANT, "B")
    assert not synopsis.can_contribute(PAGE_B, child_a)
    assert not synopsis.can_contribute(PAGE_B, desc_b)
    assert synopsis.prunable_for_scan(PAGE_B, [child_a, desc_b])
    # clusters a and c hold B nodes: provably not prunable
    for page_no in (PAGE_A, PAGE_C):
        assert synopsis.can_contribute(page_no, desc_b)
        assert not synopsis.prunable_for_scan(page_no, [child_a, desc_b])
    # default disk: interior singleton skip loses to the seek, so the
    # page is read — but no speculative work happens inside it
    pruned = paper.db.execute("/A//B", doc="paper", plan="xscan")
    unpruned = paper.db.execute(
        "/A//B", doc="paper", plan="xscan", options=EvalOptions(synopsis=False)
    )
    assert pruned.nodes == unpruned.nodes
    assert pruned.stats.pages_read == 4
    assert pruned.stats.synopsis_clusters_pruned == 0
    assert pruned.stats.synopsis_entries_pruned > 0
    assert pruned.stats.speculative_instances < unpruned.stats.speculative_instances
    # seek-free disk: skipping is free, so the scan reads 3 of 4 pages
    free_seeks = DiskGeometry(
        page_size=512, min_seek=0.0, seek_factor=0.0, rotational_latency=0.0
    )
    cheap = build_paper_tree(geometry=free_seeks)
    recollect_synopsis(cheap.db.store, cheap.doc)
    skipped = cheap.db.execute("/A//B", doc="paper", plan="xscan")
    assert skipped.nodes == unpruned.nodes
    assert skipped.stats.synopsis_clusters_pruned == 1
    assert skipped.stats.pages_read == 3


def test_cost_effective_skips_break_even():
    """The skip planner only drops runs whose saved transfers beat the
    seek+rotation penalty their gap induces."""
    geo = DiskGeometry()  # 8 KiB pages: transfer ~0.4 ms, seek ~3.4 ms
    pages = list(range(100))
    # isolated interior prunable page: cheaper to stream through
    prunable = [False] * 100
    prunable[50] = True
    assert cost_effective_skips(pages, prunable, geo) == set()
    # a long interior run pays for its seek many times over
    for i in range(40, 60):
        prunable[i] = True
    assert cost_effective_skips(pages, prunable, geo) == set(range(40, 60))
    # a tail run induces no seek: always skipped
    prunable = [False] * 100
    prunable[98] = prunable[99] = True
    assert cost_effective_skips(pages, prunable, geo) == {98, 99}
    # a run across a pre-existing hole in the numbering pays its seek
    # anyway: skipped regardless of length
    holed = [0, 1, 2, 500, 501]
    assert cost_effective_skips(holed, [False, False, True, False, False], geo) == {2}
    # seek-free disk: every prunable page is worth skipping
    free = DiskGeometry(min_seek=0.0, seek_factor=0.0, rotational_latency=0.0)
    single = [False] * 100
    single[50] = True
    assert cost_effective_skips(pages, single, free) == {50}


def test_targeted_resume_is_never_pruned_for_existing_borders():
    """can_extend must admit every cluster a real crossing targets."""
    paper = build_paper_tree()
    synopsis = recollect_synopsis(paper.db.store, paper.doc)
    tags = paper.db.tags
    # /A//B crosses into a and c for child::A and descendant::B
    assert synopsis.can_extend(PAGE_A, _step(tags, Axis.CHILD, "A"))
    assert synopsis.can_extend(PAGE_C, _step(tags, Axis.CHILD, "A"))
    assert synopsis.can_extend(PAGE_A, _step(tags, Axis.DESCENDANT, "B"))
    # but a downward resume into b can prove emptiness for child::A
    assert not synopsis.can_extend(PAGE_B, _step(tags, Axis.CHILD, "A"))


def test_unknown_cluster_is_never_pruned():
    paper = build_paper_tree()
    synopsis = recollect_synopsis(paper.db.store, paper.doc)
    step = _step(paper.db.tags, Axis.DESCENDANT, "B")
    assert synopsis.can_contribute(999, step)
    assert synopsis.can_extend(999, step)
    assert not synopsis.prunable_for_scan(999, [step])


# ------------------------------------------------------------ estimators


def test_estimator_accessors_on_paper_tree():
    paper = build_paper_tree()
    synopsis = recollect_synopsis(paper.db.store, paper.doc)
    tags = paper.db.tags
    assert synopsis.clusters_with_tag(tags.lookup("A")) == 2  # a, c
    assert synopsis.clusters_with_tag(tags.lookup("B")) == 2  # a, c
    assert synopsis.clusters_with_tag(tags.lookup("X")) == 2  # b, c
    assert synopsis.clusters_with_tag(-1) == 0
    steps = [
        _step(tags, Axis.CHILD, "A"),
        _step(tags, Axis.DESCENDANT, "B"),
    ]
    # context cluster + 2 for child::A + 2 for descendant::B
    assert synopsis.relevant_clusters(steps) == 4  # capped at n_clusters


# ----------------------------------------------------------- persistence


def test_synopsis_round_trips_through_persistence(tmp_path):
    db, _ = small_database(seed=73, n_top=40, fragmentation=1.0)
    original = db.document("d").synopsis
    path = str(tmp_path / "store.rpro")
    db.save(path)
    loaded = Database.load(path, buffer_pages=64)
    restored = loaded.document("d").synopsis
    assert restored is not None
    assert restored == original
    assert restored.rows() == original.rows()


def test_version1_file_loads_and_recollects(tmp_path, monkeypatch):
    """A pre-synopsis (v1) store file still loads; the synopsis is
    rebuilt from the pages on open."""
    db, _ = small_database(seed=74, n_top=30)
    original = db.document("d").synopsis
    path = str(tmp_path / "store-v1.rpro")
    monkeypatch.setattr(persist, "_VERSION", 1)
    monkeypatch.setattr(persist, "_write_synopsis", lambda out, synopsis: None)
    db.save(path)
    monkeypatch.undo()
    loaded = Database.load(path, buffer_pages=64)
    doc = loaded.document("d")
    assert doc.synopsis is not None  # recollected on load
    assert doc.synopsis == original


def test_from_rows_round_trip():
    db, _ = small_database(seed=75, n_top=20)
    synopsis = db.document("d").synopsis
    clone = ClusterSynopsis.from_rows(synopsis.rows())
    assert clone == synopsis
    assert clone.n_records == synopsis.n_records


# ---------------------------------------------------------- invalidation


def test_update_invalidates_synopsis():
    db = Database(page_size=512, buffer_pages=32)
    db.load_xml("<root><a/><b/></root>", "d")
    doc = db.document("d")
    assert doc.synopsis is not None
    root = db.execute("/root", doc="d", plan="simple").nodes[0]
    insert_node(db.store, doc, root, 0, "fresh")
    assert doc.synopsis is None  # stale summaries must not linger
    rebuilt = recollect_synopsis(db.store, doc)
    assert rebuilt.clusters_with_tag(db.tags.lookup("fresh")) == 1


def test_queries_work_while_synopsis_invalidated():
    """Between an update and recollection the engine runs unpruned."""
    db = Database(page_size=512, buffer_pages=32)
    tree = make_random_tree(db.tags, seed=76, n_top=20)
    db.add_tree(tree, "d", ImportOptions(page_size=512))
    doc = db.document("d")
    baseline = db.execute("count(//a)", doc="d", plan="xscan").value
    root = db.execute("/root", doc="d", plan="simple").nodes[0]
    insert_node(db.store, doc, root, 0, "a")
    assert doc.synopsis is None
    result = db.execute("count(//a)", doc="d", plan="xscan")
    assert result.value == baseline + 1
    assert result.stats.synopsis_clusters_pruned == 0
