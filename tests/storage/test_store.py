"""Tests for the document store and its validators."""

import pytest

from repro.errors import StorageError
from repro.model.builder import tree_from_nested
from repro.model.tags import TagDictionary
from repro.storage.importer import ImportOptions
from repro.storage.store import (
    DocumentStatistics,
    DocumentStore,
    check_document,
    export_tree,
)
from repro.xml.escape import serialize

from tests.conftest import make_random_tree


def test_import_and_lookup():
    tags = TagDictionary()
    store = DocumentStore(page_size=512, tags=tags)
    tree = tree_from_nested(("a", [("b",)]), tags)
    doc = store.import_document(tree, "mine")
    assert store.document("mine") is doc
    assert doc.n_nodes == 3
    with pytest.raises(StorageError):
        store.document("other")


def test_duplicate_name_rejected():
    tags = TagDictionary()
    store = DocumentStore(page_size=512, tags=tags)
    tree = tree_from_nested(("a",), tags)
    store.import_document(tree, "d")
    with pytest.raises(StorageError):
        store.import_document(tree, "d")


def test_foreign_tag_dictionary_rejected():
    store = DocumentStore(page_size=512)
    tree = tree_from_nested(("a",))  # its own dictionary
    with pytest.raises(StorageError):
        store.import_document(tree, "d")


def test_mismatched_page_size_rejected():
    tags = TagDictionary()
    store = DocumentStore(page_size=512, tags=tags)
    tree = tree_from_nested(("a",), tags)
    with pytest.raises(StorageError):
        store.import_document(tree, "d", ImportOptions(page_size=1024))


def test_multiple_documents_share_segment():
    tags = TagDictionary()
    store = DocumentStore(page_size=512, tags=tags)
    t1 = make_random_tree(tags, seed=1, n_top=20)
    t2 = make_random_tree(tags, seed=2, n_top=20)
    d1 = store.import_document(t1, "one")
    d2 = store.import_document(t2, "two")
    assert set(d1.page_nos).isdisjoint(d2.page_nos)
    assert max(d1.page_nos) < min(d2.page_nos)
    check_document(store, d1)
    check_document(store, d2)
    assert serialize(export_tree(store, d1)) == serialize(t1)
    assert serialize(export_tree(store, d2)) == serialize(t2)


def test_statistics_collected():
    tags = TagDictionary()
    store = DocumentStore(page_size=512, tags=tags)
    tree = tree_from_nested(("a", [("b", [("c",)]), ("b",)]), tags)
    doc = store.import_document(tree, "d")
    stats = doc.statistics
    assert stats is not None
    assert stats.n_nodes == len(tree)
    b = tags.lookup("b")
    a = tags.lookup("a")
    c = tags.lookup("c")
    assert stats.tag_counts[b] == 2
    assert stats.child_pairs[(a, b)] == 2
    assert stats.desc_pairs[(a, c)] == 1
    assert stats.desc_pairs[(b, c)] == 1


def test_statistics_standalone_collect():
    tree = tree_from_nested(("a", ["text", ("b",)]))
    stats = DocumentStatistics.collect(tree)
    assert stats.n_elements == 2
    assert stats.n_nodes == 4
