"""Tests for the write-ahead log: logging, checkpointing, recovery."""

import os
import struct
import zlib

import pytest

from repro import Database
from repro.errors import StorageError, StoreCorruptError, WalCorruptError
from repro.storage import wal as wal_mod
from repro.storage.store import check_document, export_tree
from repro.storage.wal import WriteAheadLog, recover_store
from repro.xml.escape import serialize


XML = (
    "<root><people><person><name>alice</name></person>"
    "<person><name>bob</name></person></people>"
    "<items><item>one</item><item>two</item></items></root>"
)


def durable_db(tmp_path, checkpoint_every=None):
    db = Database(page_size=512, buffer_pages=32)
    db.load_xml(XML, "d")
    path = str(tmp_path / "store.rpro")
    db.attach_wal(path, checkpoint_every=checkpoint_every)
    return db, path


def run_ops(db, n=6):
    """A deterministic little workload; returns the op count logged."""
    root = db.execute("/root", doc="d", plan="simple").nodes[0]
    wal = db.wal
    extra = wal.insert("d", root, 0, "extra")
    wal.insert("d", extra, 0, "leaf", value=None)
    text = db.execute("//name/text()", doc="d", plan="simple").nodes[0]
    wal.set_value("d", text, "carol")
    wal.insert("d", root, 1, "gone")
    gone = db.execute("/root/gone", doc="d", plan="simple").nodes[0]
    wal.delete("d", gone)
    wal.insert("d", extra, 1, "tail")
    return 6


def _page_image(page):
    """A comparable per-slot fingerprint of a page's records."""
    rows = []
    for record in page.records:
        if record is None:
            rows.append(None)
        elif record.is_border:
            rows.append(
                (
                    "border",
                    record.companion,
                    record.local_slot,
                    record.down,
                    record.continuation,
                    record.child_slots,
                )
            )
        else:
            rows.append(
                (
                    "core",
                    record.kind,
                    record.tag,
                    str(record.ordpath),
                    record.parent_slot,
                    record.child_slots,
                    record.value,
                )
            )
    return rows


def assert_stores_identical(left, right):
    """The recovered store must be *bit*-identical, not just equivalent."""
    assert left.segment.n_pages == right.segment.n_pages
    for page_no in range(left.segment.n_pages):
        a, b = left.segment.page(page_no), right.segment.page(page_no)
        assert a.used_bytes == b.used_bytes
        assert a.free_slots == b.free_slots
        assert _page_image(a) == _page_image(b)
    for name, doc in left.documents.items():
        other = right.document(name)
        check_document(right, other)
        assert serialize(export_tree(left, doc)) == serialize(
            export_tree(right, other)
        )
        assert (doc.synopsis is None) == (other.synopsis is None)
        if doc.synopsis is not None:
            assert doc.synopsis == other.synopsis


def test_recover_replays_full_log(tmp_path):
    db, path = durable_db(tmp_path)
    n = run_ops(db)
    db.wal.sync()
    store, report = recover_store(path)
    assert report.checkpoint_lsn == 0
    assert report.last_lsn == n
    assert report.replayed == n
    assert report.skipped == 0
    assert not report.torn_tail
    assert report.touched_pages
    assert_stores_identical(db.store, store)


def test_recover_without_updates(tmp_path):
    db, path = durable_db(tmp_path)
    store, report = recover_store(path)
    assert report.replayed == 0 and report.last_lsn == 0
    assert_stores_identical(db.store, store)


def test_recover_missing_wal_file(tmp_path):
    db, path = durable_db(tmp_path)
    db.wal.close()
    os.remove(path + ".wal")
    store, report = recover_store(path)
    assert report.replayed == 0 and not report.torn_tail
    assert_stores_identical(db.store, store)


def test_checkpoint_truncates_log(tmp_path):
    db, path = durable_db(tmp_path)
    n = run_ops(db)
    db.wal.checkpoint()
    store, report = recover_store(path)
    assert report.checkpoint_lsn == n
    assert report.replayed == 0
    assert_stores_identical(db.store, store)
    # post-checkpoint operations land in the fresh log and replay alone
    root = db.execute("/root", doc="d", plan="simple").nodes[0]
    db.wal.insert("d", root, 0, "post")
    store, report = recover_store(path)
    assert report.checkpoint_lsn == n
    assert report.replayed == 1 and report.last_lsn == n + 1
    assert_stores_identical(db.store, store)


def test_auto_checkpoint_every(tmp_path):
    db, path = durable_db(tmp_path, checkpoint_every=2)
    n = run_ops(db)
    assert db.wal.lsn == n
    store, report = recover_store(path)
    # n is even, so the last auto-checkpoint covered everything
    assert report.checkpoint_lsn == n and report.replayed == 0
    assert_stores_identical(db.store, store)


def test_checkpoint_every_must_be_positive(tmp_path):
    db = Database(page_size=512)
    db.load_xml(XML, "d")
    with pytest.raises(StorageError):
        db.attach_wal(str(tmp_path / "s.rpro"), checkpoint_every=0)


def test_attach_twice_rejected(tmp_path):
    db, path = durable_db(tmp_path)
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        db.attach_wal(str(tmp_path / "other.rpro"))


def test_torn_tail_recovers_valid_prefix(tmp_path):
    db, path = durable_db(tmp_path)
    run_ops(db)
    db.wal.sync()
    wal_path = path + ".wal"
    data = open(wal_path, "rb").read()
    # chop bytes off the end one at a time: every truncation point must
    # recover some valid prefix without raising
    seen_lsns = set()
    for cut in range(len(data) - 1, 9, -7):
        open(wal_path, "wb").write(data[:cut])
        store, report = recover_store(path)
        assert report.last_lsn <= 6
        seen_lsns.add(report.last_lsn)
        check_document(store, store.document("d"))
    assert min(seen_lsns) < 6  # at least one truncation actually cut entries


def test_corrupt_crc_stops_scan(tmp_path):
    db, path = durable_db(tmp_path)
    n = run_ops(db)
    db.wal.sync()
    wal_path = path + ".wal"
    data = bytearray(open(wal_path, "rb").read())
    # flip one bit near the end: the final entry fails its checksum and
    # is treated as torn; earlier entries still replay
    data[-3] ^= 0x40
    open(wal_path, "wb").write(bytes(data))
    store, report = recover_store(path)
    assert report.torn_tail
    assert report.last_lsn == n - 1
    check_document(store, store.document("d"))


def test_bad_magic_raises(tmp_path):
    db, path = durable_db(tmp_path)
    open(path + ".wal", "wb").write(b"XXXX" + b"\0" * 10)
    with pytest.raises(WalCorruptError):
        recover_store(path)


def test_bad_version_raises(tmp_path):
    db, path = durable_db(tmp_path)
    open(path + ".wal", "wb").write(b"RWAL" + struct.pack("<HQ", 99, 0))
    with pytest.raises(WalCorruptError):
        recover_store(path)


def test_short_header_is_empty_log(tmp_path):
    db, path = durable_db(tmp_path)
    run_ops(db)
    db.wal.sync()
    # a crash during log reset leaves a header-less file: sound only
    # because resets follow checkpoints, so simulate that pairing
    db.wal.checkpoint()
    open(path + ".wal", "wb").write(b"RW")
    store, report = recover_store(path)
    assert report.torn_tail and report.replayed == 0
    assert_stores_identical(db.store, store)


def test_missing_operations_raise(tmp_path):
    db, path = durable_db(tmp_path)
    run_ops(db)
    db.wal.checkpoint()
    root = db.execute("/root", doc="d", plan="simple").nodes[0]
    db.wal.insert("d", root, 0, "post")
    # roll the *image* back to the pre-checkpoint one: now the log's
    # base LSN is ahead of the image and operations are unaccounted for
    db2 = Database(page_size=512, buffer_pages=32)
    db2.load_xml(XML, "d")
    from repro.storage.persist import save_store

    save_store(db2.store, path)
    with pytest.raises(WalCorruptError):
        recover_store(path)


def test_replay_divergence_detected(tmp_path):
    db, path = durable_db(tmp_path)
    run_ops(db)
    db.wal.sync()
    wal_path = path + ".wal"
    data = bytearray(open(wal_path, "rb").read())
    # rewrite the first entry's logged insert-result NodeID and fix up
    # its CRC: the entry is checksum-clean but describes another history
    offset = 4 + wal_mod._WAL_HEADER.size
    head_size = wal_mod._ENTRY_HEAD.size
    lsn, op, payload_len = wal_mod._ENTRY_HEAD.unpack(
        data[offset : offset + head_size]
    )
    assert op == wal_mod.OP_INSERT
    payload_at = offset + head_size
    nid_at = payload_at + payload_len - 8
    data[nid_at : nid_at + 8] = struct.pack("<Q", 0xDEAD)
    crc_at = payload_at + payload_len
    data[crc_at : crc_at + 4] = struct.pack(
        "<I", zlib.crc32(bytes(data[offset:crc_at]))
    )
    open(wal_path, "wb").write(bytes(data))
    with pytest.raises(StoreCorruptError, match="replay diverged"):
        recover_store(path)


def test_unknown_op_with_good_crc_raises(tmp_path):
    db, path = durable_db(tmp_path)
    db.wal.sync()
    wal_path = path + ".wal"
    head = wal_mod._ENTRY_HEAD.pack(1, 77, 0)
    entry = head + struct.pack("<I", zlib.crc32(head))
    with open(wal_path, "ab") as out:
        out.write(entry)
    with pytest.raises(WalCorruptError, match="unknown WAL operation"):
        recover_store(path)


def test_lsn_discontinuity_raises(tmp_path):
    db, path = durable_db(tmp_path)
    db.wal.sync()
    wal_path = path + ".wal"
    # first entry claims LSN 5 on a base-0 log
    payload = b""
    head = wal_mod._ENTRY_HEAD.pack(5, wal_mod.OP_DELETE, len(payload))
    entry = head + payload + struct.pack("<I", zlib.crc32(head + payload))
    with open(wal_path, "ab") as out:
        out.write(entry)
    with pytest.raises(WalCorruptError, match="discontinuity"):
        recover_store(path)


def test_stale_tmp_removed(tmp_path):
    db, path = durable_db(tmp_path)
    run_ops(db)
    db.wal.sync()
    open(path + ".tmp", "wb").write(b"half a checkpoint")
    store, report = recover_store(path)
    assert not os.path.exists(path + ".tmp")
    assert_stores_identical(db.store, store)


def test_slot_reuse_is_deterministic(tmp_path):
    """Delete-then-insert must reuse slots identically live and replayed
    — NodeIDs minted after a delete appear in later log entries."""
    db, path = durable_db(tmp_path)
    wal = db.wal
    root = db.execute("/root", doc="d", plan="simple").nodes[0]
    person = db.execute("//person", doc="d", plan="simple").nodes[0]
    wal.delete("d", person)
    nid = wal.insert("d", root, 0, "reborn")
    wal.set_value("d", db.execute("//item/text()", doc="d", plan="simple").nodes[0], "3")
    wal.insert("d", nid, 0, "child")
    wal.sync()
    store, report = recover_store(path)
    assert report.replayed == 4
    assert_stores_identical(db.store, store)


def test_group_commit_defers_sync(tmp_path, monkeypatch):
    db, path = durable_db(tmp_path)
    root = db.execute("/root", doc="d", plan="simple").nodes[0]
    syncs = []
    monkeypatch.setattr(os, "fsync", lambda fd: syncs.append(fd))
    with db.wal.group_commit():
        db.wal.insert("d", root, 0, "one")
        db.wal.insert("d", root, 0, "two")
        with db.wal.group_commit():  # nested window must not double-sync
            db.wal.insert("d", root, 0, "three")
        inner = len(syncs)
    assert inner == 0  # nothing synced inside the window
    assert len(syncs) == 1  # exactly one sync as the window closed
    db.wal.insert("d", root, 0, "four")
    assert len(syncs) == 2  # per-op sync policy is back


def test_recovered_synopsis_matches_full_recollect(tmp_path):
    from repro.storage.store import recollect_synopsis

    db, path = durable_db(tmp_path)
    run_ops(db)
    db.wal.sync()
    store, _ = recover_store(path)
    doc = store.document("d")
    incremental = doc.synopsis
    assert incremental is not None
    assert incremental == recollect_synopsis(store, doc)


def test_database_recover_runs_queries(tmp_path):
    db, path = durable_db(tmp_path)
    run_ops(db)
    db.wal.sync()
    recovered, report = Database.recover(path)
    assert report.replayed == 6
    for query in ("count(//person)", "count(//extra)", "count(//item)"):
        want = db.execute(query, doc="d").value
        assert recovered.execute(query, doc="d").value == want


def test_recover_custom_wal_path(tmp_path):
    db = Database(page_size=512, buffer_pages=32)
    db.load_xml(XML, "d")
    path = str(tmp_path / "store.rpro")
    side = str(tmp_path / "side.log")
    db.attach_wal(path, wal_path=side)
    run_ops(db)
    db.wal.sync()
    assert os.path.exists(side) and not os.path.exists(path + ".wal")
    store, report = recover_store(path, wal_path=side)
    assert report.replayed == 6
    assert_stores_identical(db.store, store)


def test_failed_operation_is_not_logged(tmp_path):
    db, path = durable_db(tmp_path)
    root = db.execute("/root", doc="d", plan="simple").nodes[0]
    before = db.wal.lsn
    with pytest.raises(StorageError):
        db.wal.insert("d", root, 999, "nope")  # position out of range
    assert db.wal.lsn == before
    store, report = recover_store(path)
    assert report.last_lsn == before
    assert_stores_identical(db.store, store)
