"""Failure-path tests for update operations.

An update interrupted mid-mutation (simulated process death via
:class:`~repro.sim.faults.CrashInjector`) may leave the physical page
image half-changed — that is what the WAL recovers from — but it must
never leave *stale derived state* behind: the schema statistics and the
cluster synopsis are invalidated before the first mutation, so a
survivor that keeps using the in-memory store cannot be steered into
unsound pruning by a row describing pre-update pages.
"""

import pytest

from repro import Database
from repro.errors import SimulatedCrashError
from repro.sim.faults import CRASH_UPDATE_APPLY, CrashInjector, CrashPoint
from repro.storage.store import check_document, recollect_synopsis
from repro.storage.update import delete_subtree, insert_node, update_value
from repro.storage.wal import recover_store


XML = (
    "<root><people><person><name>alice</name></person>"
    "<person><name>bob</name></person></people>"
    "<items><item>one</item><item>two</item></items></root>"
)


def fresh_db():
    db = Database(page_size=512, buffer_pages=32)
    db.load_xml(XML, "d")
    return db


def arm(db, at=1):
    db.store.crash = CrashInjector(CrashPoint(step=CRASH_UPDATE_APPLY, at=at))
    return db.store.crash


def test_interrupted_insert_leaves_no_stale_synopsis():
    db = fresh_db()
    doc = db.document("d")
    recollect_synopsis(db.store, doc)
    assert doc.synopsis is not None
    root = db.execute("/root", doc="d", plan="simple").nodes[0]
    arm(db)
    with pytest.raises(SimulatedCrashError):
        insert_node(db.store, doc, root, 0, "extra")
    # the record was placed but never linked — yet nothing derived still
    # describes the pre-insert pages
    assert doc.synopsis is None
    assert doc.statistics is None


def test_interrupted_delete_every_step():
    """The tombstone walk announces one crash point per record: sweep
    them all; at every depth the derived state is fully invalidated."""
    # count the walk's steps with an injector armed out of reach
    db = fresh_db()
    doc = db.document("d")
    people = db.execute("/root/people", doc="d", plan="simple").nodes[0]
    counter = arm(db, at=10**6)
    delete_subtree(db.store, doc, people)
    total = counter.occurrences(CRASH_UPDATE_APPLY)
    assert total > 2  # a real walk, not one step

    for at in range(1, total + 1):
        db = fresh_db()
        doc = db.document("d")
        recollect_synopsis(db.store, doc)
        people = db.execute("/root/people", doc="d", plan="simple").nodes[0]
        arm(db, at=at)
        try:
            delete_subtree(db.store, doc, people)
        except SimulatedCrashError:
            assert doc.synopsis is None
            assert doc.statistics is None
        else:
            pytest.fail(f"crash point {at} did not fire")


def test_interrupted_set_value_keeps_old_value():
    db = fresh_db()
    doc = db.document("d")
    text = db.execute("//name/text()", doc="d", plan="simple").nodes[0]
    arm(db)
    with pytest.raises(SimulatedCrashError):
        update_value(db.store, text, "carol")
    db.store.crash = None
    # the crash lands between byte re-accounting and the value swap; the
    # value itself is still the old one and the document checks out
    assert db.node_info(text)[2] == "alice"
    check_document(db.store, doc)


def test_uninterrupted_ops_ignore_armed_injector_at_later_step():
    db = fresh_db()
    doc = db.document("d")
    root = db.execute("/root", doc="d", plan="simple").nodes[0]
    arm(db, at=1000)  # armed but never reached
    nid = insert_node(db.store, doc, root, 0, "extra")
    assert int(nid) >= 0
    check_document(db.store, doc)


def test_wal_recovery_discards_interrupted_operation(tmp_path):
    """With a WAL attached, a mid-operation crash recovers to the last
    acknowledged operation: the torn one was never logged."""
    db = fresh_db()
    path = str(tmp_path / "store.rpro")
    db.attach_wal(path, crash=CrashInjector(
        CrashPoint(step=CRASH_UPDATE_APPLY, at=5)
    ))
    root = db.execute("/root", doc="d", plan="simple").nodes[0]
    acked = 0
    try:
        for i in range(10):
            db.wal.insert("d", root, 0, f"n{i}")
            acked += 1
    except SimulatedCrashError:
        pass
    assert 0 < acked < 10
    store, report = recover_store(path)
    assert report.last_lsn == acked  # everything acknowledged, nothing more
    doc = store.document("d")
    check_document(store, doc)
    assert doc.synopsis is not None  # repaired, not nulled, on recovery
    assert doc.synopsis == recollect_synopsis(store, doc)


def test_colviews_invalidated_on_touched_pages():
    """Pages mutated before the crash must not serve pre-update columnar
    views (version bump + colview invalidation happen together)."""
    db = fresh_db()
    doc = db.document("d")
    # warm the colviews through a columnar scan
    db.execute("count(//person)", doc="d", plan="xscan")
    segment = db.store.segment
    warmed = {
        page.page_no for page in segment.pages() if page._colview is not None
    }
    assert warmed
    versions = {page.page_no: page.version for page in segment.pages()}
    root = db.execute("/root", doc="d", plan="simple").nodes[0]
    arm(db)
    with pytest.raises(SimulatedCrashError):
        insert_node(db.store, doc, root, 0, "extra")
    moved = [
        page
        for page in segment.pages()
        if page.version != versions.get(page.page_no, -1)
    ]
    assert moved  # the interrupted insert did mutate at least one page
    for page in moved:
        assert page._colview is None
