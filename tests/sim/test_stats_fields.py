"""Guard rails for the Stats counter bundle.

Every aggregate method must be ``dataclasses.fields()``-driven — adding a
counter to :class:`~repro.sim.stats.Stats` must never require touching
``merge``/``snapshot``/``diff``/``as_dict``/``reset`` — and a new counter
without a matching tracer mirror must be caught by reconciliation, not
silently drift.
"""

import dataclasses

from repro.obs import TraceSummary
from repro.sim.stats import Stats


def _filled(offset: int) -> Stats:
    stats = Stats()
    for index, f in enumerate(dataclasses.fields(Stats)):
        setattr(stats, f.name, offset + index)
    return stats


def test_every_field_flows_through_all_aggregate_methods():
    """Set every field to a distinct value and push it through each
    method; a hand-maintained field list would drop the newest one."""
    a, b = _filled(1), _filled(1000)
    names = [f.name for f in dataclasses.fields(Stats)]

    assert set(a.as_dict()) == set(names)

    snap = a.snapshot()
    assert snap is not a
    assert snap.as_dict() == a.as_dict()

    merged = a.snapshot()
    merged.merge(b)
    for name in names:
        assert getattr(merged, name) == getattr(a, name) + getattr(b, name)

    assert merged.diff(b).as_dict() == a.as_dict()

    merged.reset()
    assert all(value == 0 for value in merged.as_dict().values())


def test_reconcile_flags_an_unmirrored_new_field():
    """The drift detector: a counter added to Stats whose increments are
    not mirrored into the tracer shows up the moment it is exercised."""
    ExtendedStats = dataclasses.make_dataclass(
        "ExtendedStats",
        [("shiny_new", int, dataclasses.field(default=0))],
        bases=(Stats,),
    )
    stats = ExtendedStats()
    stats.pages_read = 2
    stats.shiny_new = 3
    summary = TraceSummary(counters={"pages_read": 2})
    assert summary.reconcile(stats) == {"shiny_new": (0, 3)}


def test_logical_vs_physical_page_counters_exist():
    """The budget meters logical reads (``pages_requested``); the disk
    bills physical attempts (``pages_read``).  Both must stay fields so
    the aggregate machinery and the tracer mirrors carry them."""
    names = {f.name for f in dataclasses.fields(Stats)}
    assert "pages_requested" in names
    assert "pages_read" in names
