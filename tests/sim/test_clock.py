"""Tests for the simulated clock."""

import pytest

from repro.sim.clock import SimClock


def test_initial_state():
    clock = SimClock()
    assert clock.now == 0.0
    assert clock.cpu_time == 0.0
    assert clock.io_wait == 0.0


def test_work_accumulates_cpu():
    clock = SimClock()
    clock.work(0.5)
    clock.work(0.25)
    assert clock.now == pytest.approx(0.75)
    assert clock.cpu_time == pytest.approx(0.75)
    assert clock.io_wait == 0.0


def test_negative_work_rejected():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.work(-1.0)


def test_wait_until_future_accounts_io_wait():
    clock = SimClock()
    clock.work(1.0)
    clock.wait_until(3.0)
    assert clock.now == pytest.approx(3.0)
    assert clock.io_wait == pytest.approx(2.0)
    assert clock.cpu_time == pytest.approx(1.0)


def test_wait_until_past_is_noop():
    clock = SimClock()
    clock.work(2.0)
    clock.wait_until(1.0)
    assert clock.now == pytest.approx(2.0)
    assert clock.io_wait == 0.0


def test_total_is_cpu_plus_wait():
    clock = SimClock()
    clock.work(0.2)
    clock.wait_until(1.0)
    clock.work(0.3)
    clock.wait_until(2.0)
    assert clock.now == pytest.approx(clock.cpu_time + clock.io_wait)


def test_checkpoint_and_since():
    clock = SimClock()
    clock.work(1.0)
    mark = clock.checkpoint()
    clock.work(0.5)
    clock.wait_until(2.5)
    total, cpu, wait = clock.since(mark)
    assert total == pytest.approx(1.5)
    assert cpu == pytest.approx(0.5)
    assert wait == pytest.approx(1.0)
