"""Tests for Stats and CostModel."""

import pytest

from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.sim.stats import Stats


def test_stats_start_zero():
    stats = Stats()
    assert all(v == 0 for v in stats.as_dict().values())


def test_stats_merge_adds_counters():
    a = Stats()
    b = Stats()
    a.pages_read = 3
    b.pages_read = 4
    b.seeks = 2
    a.merge(b)
    assert a.pages_read == 7
    assert a.seeks == 2
    assert b.pages_read == 4  # merge does not mutate the source


def test_stats_reset():
    stats = Stats()
    stats.swizzles = 10
    stats.reset()
    assert stats.swizzles == 0


def test_cost_model_scaled():
    base = CostModel()
    doubled = base.scaled(2.0)
    assert doubled.swizzle == pytest.approx(base.swizzle * 2)
    assert doubled.intra_hop == pytest.approx(base.intra_hop * 2)
    assert doubled.page_register == pytest.approx(base.page_register * 2)


def test_cost_model_swizzle_asymmetry():
    """Swizzling must be much more expensive than unswizzling (Sec. 3.6)."""
    costs = DEFAULT_COST_MODEL
    assert costs.swizzle > 10 * costs.unswizzle


def test_cost_model_frozen():
    with pytest.raises(Exception):
        DEFAULT_COST_MODEL.swizzle = 0.0  # type: ignore[misc]
