"""Tests for the simulated disk device."""

import pytest

from repro.sim.disk import DiskDevice, DiskGeometry, SchedulingPolicy


def read_all_sync(disk: DiskDevice, pages: list[int]) -> list[int]:
    """Submit pages one at a time, waiting for each (synchronous order)."""
    now = 0.0
    order = []
    for page in pages:
        disk.submit(page, now)
        now = disk.run_until_completion(now)
        req = disk.pop_completed(now)
        order.append(req.page)
    return order


def drain_async(disk: DiskDevice, pages: list[int]) -> list[int]:
    """Submit all pages at time 0, then drain completions in service order."""
    for page in pages:
        disk.submit(page, 0.0)
    order = []
    now = 0.0
    while True:
        done_at = disk.run_until_completion(now)
        if done_at is None:
            return order
        now = done_at
        order.append(disk.pop_completed(now).page)


def test_geometry_seek_curve_monotone():
    geo = DiskGeometry()
    assert geo.seek_time(0) == 0.0
    previous = 0.0
    for distance in (1, 10, 100, 10_000, 10_000_000):
        current = geo.seek_time(distance)
        assert current >= previous
        previous = current
    assert geo.seek_time(10_000_000) == geo.full_seek


def test_sequential_reads_pay_transfer_only():
    geo = DiskGeometry()
    disk = DiskDevice(geo)
    read_all_sync(disk, [0, 1, 2, 3])
    # the head parks at page 0, so all four reads stream
    assert disk.stats.sequential_reads == 4
    assert disk.stats.seeks == 0
    assert disk.stats.pages_read == 4
    assert disk.busy_until == pytest.approx(4 * geo.transfer_time)


def test_random_reads_pay_seeks():
    disk = DiskDevice()
    read_all_sync(disk, [0, 100, 5, 900])
    assert disk.stats.seeks >= 3
    assert disk.stats.seek_distance > 0


def test_random_slower_than_sequential():
    geo = DiskGeometry()
    sequential = DiskDevice(geo)
    now_seq = 0.0
    read_all_sync(sequential, list(range(50)))
    random_disk = DiskDevice(geo)
    read_all_sync(random_disk, [i * 37 % 50 for i in range(50)])
    assert random_disk.busy_until > sequential.busy_until * 3


def test_fifo_preserves_submission_order():
    disk = DiskDevice(policy=SchedulingPolicy.FIFO)
    pages = [40, 10, 30, 20]
    assert drain_async(disk, pages) == pages


def test_sstf_reorders_by_distance():
    disk = DiskDevice(policy=SchedulingPolicy.SSTF)
    # head starts at 0: nearest-first service
    assert drain_async(disk, [40, 10, 30, 20]) == [10, 20, 30, 40]


def test_clook_sweeps_upward_then_wraps():
    disk = DiskDevice(policy=SchedulingPolicy.CLOOK)
    disk.head = 25
    assert drain_async(disk, [40, 10, 30, 20]) == [30, 40, 10, 20]


def test_reordering_beats_fifo_on_random_pattern():
    pages = [i * 997 % 1000 for i in range(60)]
    fifo = DiskDevice(policy=SchedulingPolicy.FIFO)
    drain_async(fifo, pages)
    sstf = DiskDevice(policy=SchedulingPolicy.SSTF)
    drain_async(sstf, pages)
    assert sstf.busy_until < fifo.busy_until


def test_no_future_knowledge():
    """A request submitted later cannot be serviced before its submit time."""
    disk = DiskDevice(policy=SchedulingPolicy.SSTF)
    disk.submit(500, 0.0)
    done_at = disk.run_until_completion(0.0)
    # page 1 submitted after the first service started: must come second
    disk.submit(1, done_at / 2)
    order = []
    now = 0.0
    while True:
        done = disk.run_until_completion(now)
        if done is None:
            break
        now = done
        order.append(disk.pop_completed(now).page)
    assert order == [500, 1]


def test_negative_page_rejected():
    disk = DiskDevice()
    with pytest.raises(ValueError):
        disk.submit(-1, 0.0)


def test_queued_and_outstanding():
    disk = DiskDevice()
    assert not disk.queued(5)
    disk.submit(5, 0.0)
    assert disk.queued(5)
    assert disk.outstanding() == 1
    now = disk.run_until_completion(0.0)
    disk.pop_completed(now)
    assert disk.outstanding() == 0


def test_pop_completed_respects_time():
    disk = DiskDevice()
    disk.submit(100, 0.0)
    # not done at time 0 (service takes > 0)
    assert disk.pop_completed(0.0) is None
    done_at = disk.run_until_completion(0.0)
    assert disk.pop_completed(done_at) is not None


def test_rotational_optimisation_with_deep_queue():
    """A deep async queue finishes faster than serial requests (TCQ win)."""
    pages = [i * 613 % 700 for i in range(40)]
    serial = DiskDevice(policy=SchedulingPolicy.SSTF)
    read_all_sync(serial, pages)
    queued = DiskDevice(policy=SchedulingPolicy.SSTF)
    drain_async(queued, pages)
    assert queued.busy_until < serial.busy_until * 0.85
