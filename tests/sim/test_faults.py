"""Tests for deterministic fault injection and I/O-layer recovery."""

import pytest

from repro.errors import PageReadError, ReproError, RequestLostError
from repro.sim.clock import SimClock
from repro.sim.costmodel import CostModel
from repro.sim.disk import DiskDevice
from repro.sim.faults import (
    PROFILES,
    FaultPlan,
    FaultProfile,
    Outcome,
    RetryPolicy,
    fault_profile,
)
from repro.sim.iosys import AsyncIOSystem


def make_iosys(profile: FaultProfile | None = None, retry: RetryPolicy | None = None):
    clock = SimClock()
    plan = FaultPlan(profile) if profile is not None else None
    disk = DiskDevice(faults=plan)
    return AsyncIOSystem(disk, clock, CostModel(), retry=retry), clock, disk


# ------------------------------------------------------------- fault plans


def test_plan_is_deterministic():
    profile = PROFILES["mixed"]
    a, b = FaultPlan(profile), FaultPlan(profile)
    for page in (3, 17, 3, 99, 17, 3):
        assert a.service(page) == b.service(page)


def test_plan_decisions_are_order_independent():
    """A page's fault sequence ignores what happened to other pages."""
    profile = FaultProfile(seed=5, error_rate=0.5, error_burst=10, slow_rate=0.3)
    interleaved = FaultPlan(profile)
    seq_a = [interleaved.service(p) for p in (1, 2, 1, 2, 1, 2)]
    isolated = FaultPlan(profile)
    only_1 = [isolated.service(1) for _ in range(3)]
    only_2 = [isolated.service(2) for _ in range(3)]
    assert seq_a[0::2] == only_1
    assert seq_a[1::2] == only_2


def test_error_burst_is_capped():
    plan = FaultPlan(FaultProfile(error_rate=1.0, error_burst=2))
    outcomes = [plan.service(7).outcome for _ in range(3)]
    assert outcomes == [Outcome.ERROR, Outcome.ERROR, Outcome.OK]


def test_dead_pages_ignore_burst_cap():
    plan = FaultPlan(FaultProfile(dead_pages=frozenset({5})))
    assert all(plan.service(5).outcome is Outcome.ERROR for _ in range(8))
    assert plan.service(6).outcome is Outcome.OK


def test_dead_services_bound_recovery():
    plan = FaultPlan(FaultProfile(dead_pages=frozenset({5}), dead_services=3))
    outcomes = [plan.service(5).outcome for _ in range(4)]
    assert outcomes == [Outcome.ERROR] * 3 + [Outcome.OK]


def test_profile_validation():
    with pytest.raises(ReproError):
        FaultProfile(error_rate=1.5)
    with pytest.raises(ReproError):
        FaultProfile(lost_rate=-0.1)
    with pytest.raises(ReproError):
        FaultProfile(slow_rate=0.1, slow_factor=0.5)


def test_profile_registry_and_spec():
    assert not PROFILES["none"].active
    assert all(PROFILES[name].active for name in PROFILES if name != "none")
    assert fault_profile("mixed").seed == PROFILES["mixed"].seed
    assert fault_profile("mixed:7").seed == 7
    with pytest.raises(ReproError):
        fault_profile("no-such-profile")
    with pytest.raises(ReproError):
        fault_profile("mixed:not-a-seed")


def test_retry_policy_validation_and_delay():
    with pytest.raises(ReproError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ReproError):
        RetryPolicy(request_timeout=0.0)
    policy = RetryPolicy(backoff_base=0.002, backoff_factor=2.0, backoff_cap=0.05, jitter=0.25)
    previous = 0.0
    for attempt in range(1, 6):
        delay = policy.delay(42, attempt)
        base = min(0.05, 0.002 * 2.0 ** (attempt - 1))
        assert base <= delay <= base * 1.25
        assert delay == policy.delay(42, attempt)  # deterministic jitter
        assert delay >= previous * 0.5  # grows modulo jitter/cap
        previous = delay


# --------------------------------------------------------- disk injection


def test_disk_applies_slow_factor():
    fast, _, _ = make_iosys()
    fast.read_sync(100)
    slow, clock, disk = make_iosys(FaultProfile(slow_rate=1.0, slow_factor=20.0))
    slow.read_sync(100)
    assert disk.stats.slow_services == 1
    assert clock.now > 10 * fast.clock.now


def test_disk_drops_lost_completions():
    profile = FaultProfile(lost_rate=1.0, lost_burst=2)
    iosys, _, disk = make_iosys(profile)
    iosys.read_sync(10)
    assert disk.stats.lost_requests == 2


# ------------------------------------------------------------ recovery


def test_sync_read_retries_transient_errors():
    profile = FaultProfile(error_rate=1.0, error_burst=2)
    iosys, clock, _ = make_iosys(profile)
    iosys.read_sync(10)  # must not raise: burst cap < retry cap
    stats = iosys.stats
    assert stats.io_errors == 2
    assert stats.retries == 2
    assert stats.backoff_wait > 0.0
    assert iosys.outstanding() == 0


def test_async_read_retries_transient_errors():
    profile = FaultProfile(error_rate=1.0, error_burst=2)
    iosys, _, _ = make_iosys(profile)
    iosys.request(10)
    assert iosys.get_completion() == 10
    assert iosys.stats.io_errors == 2
    assert iosys.stats.retries == 2


def test_retry_cap_escalates_to_page_read_error():
    iosys, _, _ = make_iosys(FaultProfile(dead_pages=frozenset({10})))
    with pytest.raises(PageReadError) as err:
        iosys.read_sync(10)
    assert err.value.page == 10
    assert err.value.attempts == 1 + iosys.retry.max_retries
    assert iosys.outstanding() == 0  # state cleaned up after escalation


def test_lost_requests_are_resubmitted():
    profile = FaultProfile(lost_rate=1.0, lost_burst=2)
    iosys, clock, _ = make_iosys(profile)
    iosys.read_sync(10)
    stats = iosys.stats
    assert stats.timeouts == 2
    assert stats.lost_requests == 2
    assert stats.retries == 2
    # each loss is only observable at its deadline
    assert clock.now > iosys.retry.request_timeout


def test_lost_request_escalates_at_retry_cap():
    profile = FaultProfile(lost_rate=1.0, lost_burst=100)
    iosys, _, _ = make_iosys(profile, retry=RetryPolicy(max_retries=3))
    iosys.request(10)
    with pytest.raises(RequestLostError) as err:
        iosys.get_completion()
    assert err.value.page == 10


def test_retry_preserves_end_to_end_latency():
    """last_latency spans the whole recovery chain, not just the last try."""
    profile = FaultProfile(error_rate=1.0, error_burst=3)
    iosys, _, _ = make_iosys(profile)
    iosys.read_sync(10)
    clean, _, _ = make_iosys()
    clean.read_sync(10)
    assert iosys.last_latency > clean.last_latency
