"""Tests for the asynchronous I/O subsystem."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.costmodel import CostModel
from repro.sim.disk import DiskDevice, SchedulingPolicy
from repro.sim.iosys import AsyncIOSystem


def make_iosys(policy=SchedulingPolicy.SSTF):
    clock = SimClock()
    disk = DiskDevice(policy=policy)
    return AsyncIOSystem(disk, clock, CostModel()), clock, disk


def test_sync_read_blocks_clock():
    iosys, clock, _ = make_iosys()
    iosys.read_sync(100)
    assert clock.now > 0.0
    assert clock.io_wait > 0.0


def test_async_request_does_not_block():
    iosys, clock, _ = make_iosys()
    iosys.request(100)
    # only the submit CPU cost is charged; no I/O wait yet
    assert clock.io_wait == 0.0
    assert iosys.outstanding() == 1


def test_request_coalesces_duplicates():
    iosys, _, disk = make_iosys()
    assert iosys.request(5) is True
    assert iosys.request(5) is False
    assert disk.outstanding() == 1


def test_get_completion_blocking():
    iosys, clock, _ = make_iosys()
    iosys.request(10)
    page = iosys.get_completion()
    assert page == 10
    assert clock.io_wait > 0.0
    assert iosys.outstanding() == 0


def test_get_completion_none_when_idle():
    iosys, _, _ = make_iosys()
    assert iosys.get_completion() is None


def test_try_get_completion_nonblocking():
    iosys, clock, _ = make_iosys()
    iosys.request(10)
    assert iosys.try_get_completion() is None  # nothing finished at t=0+eps
    waited = clock.io_wait
    assert waited == 0.0


def test_async_overlaps_cpu_work():
    """CPU work done while the disk serves reduces the blocking wait."""
    iosys_idle, clock_idle, _ = make_iosys()
    iosys_idle.request(300)
    iosys_idle.get_completion()
    wait_idle = clock_idle.io_wait

    iosys_busy, clock_busy, _ = make_iosys()
    iosys_busy.request(300)
    clock_busy.work(wait_idle)  # do the same amount of work as the wait
    iosys_busy.get_completion()
    assert clock_busy.io_wait < wait_idle * 0.1


def test_completions_reordered_by_controller():
    iosys, _, _ = make_iosys()
    for page in (400, 50, 200):
        iosys.request(page)
    order = [iosys.get_completion() for _ in range(3)]
    assert sorted(order) == [50, 200, 400]
    # page 400 starts immediately (disk idle at submit); from head 401 the
    # controller picks 200 before 50
    assert order == [400, 200, 50]


def test_sync_read_of_pending_async_request():
    """A sync read of an already-requested page waits for that request."""
    iosys, clock, disk = make_iosys()
    iosys.request(77)
    iosys.read_sync(77)
    assert disk.outstanding() == 0
    assert iosys.outstanding() == 0


def test_early_completions_surfaced():
    """Completions for other pages during a sync wait are not lost."""
    iosys, _, _ = make_iosys(policy=SchedulingPolicy.SSTF)
    iosys.request(600)  # starts immediately (disk idle), head moves to 601
    iosys.request(10)
    iosys.request(5)
    # waiting for page 5: SSTF serves 10 before 5, so 600 and 10 complete
    # during the synchronous wait
    iosys.read_sync(5)
    early = iosys.drain_early_completions()
    assert early == [600, 10]
