"""Tests for the chooser validation harness."""

import json

import pytest

from repro.xpath.validate import (
    audit_seek_model,
    build_store,
    q_error,
    validate_many,
    validate_query,
)
from tests.conftest import small_database


@pytest.fixture(scope="module")
def db():
    return small_database(seed=5, n_top=60)[0]


def test_q_error():
    assert q_error(2.0, 1.0) == pytest.approx(2.0)
    assert q_error(1.0, 2.0) == pytest.approx(2.0)
    assert q_error(3.0, 3.0) == pytest.approx(1.0)
    assert q_error(0.0, 1.0) == float("inf")


def test_validate_query_measures_every_family(db):
    decision = validate_query(db, "//a", doc="d", meta={"case": "unit"})
    assert set(decision.measured) == {"simple", "xscan", "xschedule"}
    assert set(decision.predicted) == {"xscan", "xschedule"}
    assert len(decision.choices) == 1
    # AUTO's total is the measured total of whichever family it picked
    # (cold runs are deterministic)
    choice = decision.choices[0][0]
    assert decision.auto_total == pytest.approx(decision.measured[choice])
    assert decision.best_total == min(
        decision.measured["xscan"], decision.measured["xschedule"]
    )
    assert decision.win == (decision.regret == 0.0)
    # single-path: both families' forced runs are clean observations
    assert {ob.plan for ob in decision.observations} == {"xscan", "xschedule"}
    assert all(ob.prediction is not None for ob in decision.observations)


def test_multi_path_queries_produce_no_observations(db):
    decision = validate_query(db, "count(//a) + count(//b)", doc="d")
    assert len(decision.choices) == 2
    assert decision.observations == []


def test_report_aggregates_and_serialises(db):
    report = validate_many(
        [(db, "//a", {"case": "a"}), (db, "//b", {"case": "b"})], doc="d"
    )
    assert len(report.decisions) == 2
    assert 0.0 <= report.win_rate <= 1.0
    assert report.total_regret >= 0.0
    assert report.wins == sum(1 for d in report.decisions if d.win)
    payload = report.as_dict()
    assert payload["points"] == 2
    assert [row["case"] for row in payload["decisions"]] == ["a", "b"]
    json.dumps(payload)  # the bench artifact must be JSON-clean


def test_build_store_seeds_and_fits(db):
    report = validate_many([(db, "//a", {})], doc="d")
    store = build_store(report.decisions)
    steps = list(report.decisions[0].observations[0].steps)
    # both families observed -> the measured argmin decides, and it names
    # the family that really was cheaper in the forced runs
    advice = store.advise("d", steps, None)
    assert advice is not None and advice[1] == "measured"
    assert advice[0] == report.decisions[0].best_plan
    assert store.model is not None


def test_calibrated_pass_never_regresses(db):
    points = [(db, q, {"q": q}) for q in ("//a", "//b", "/a/b")]
    baseline = validate_many(points, doc="d")
    calibrated = validate_many(points, doc="d", advisor=build_store(baseline.decisions))
    assert calibrated.win_rate >= baseline.win_rate
    assert calibrated.total_regret <= baseline.total_regret + 1e-12
    for decision in calibrated.decisions:
        assert decision.win
        if decision.query == "/a/b":
            # the path summary refutes this path outright (the document's
            # root element is not ``a``): no chooser decision is recorded
            # and every family short-circuits to the empty result
            assert decision.choices == []
            assert decision.auto_total == 0.0
        else:
            assert decision.choices[0][1] == "measured"


def test_seek_audit_row(db):
    row = audit_seek_model(db, "//a", doc="d", meta={"case": "unit"})
    assert row.n_pages == db.document("d").n_pages
    assert row.legacy_hop == float(row.n_pages // 3)
    assert row.predicted_hop >= 1.0
    payload = row.as_dict()
    assert payload["case"] == "unit"
    if row.measured_seeks:
        assert payload["predicted_time_error"] >= 1.0
        assert payload["legacy_time_error"] >= 1.0
    json.dumps(payload)
