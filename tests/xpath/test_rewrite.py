"""Unit tests for the whole-query rewrite pass (refute / expand / price)."""

import pytest

from repro import Database, EvalOptions, ImportOptions
from repro.axes import Axis
from repro.algebra.steps import CompiledNodeTest, CompiledStep
from repro.model.builder import tree_from_nested
from repro.xpath.rewrite import rewrite_path


def make_db(spec, page_size=512):
    db = Database(page_size=page_size, buffer_pages=32)
    db.add_tree(tree_from_nested(spec, db.tags), "d", ImportOptions(page_size=page_size))
    return db


def step(db, axis, name=None, kind="name"):
    tag = db.tags.lookup(name) if name else None
    test_kind = "name" if name else kind
    return CompiledStep(axis, CompiledNodeTest.compile(test_kind, axis, tag))


def deep_db():
    """``x`` occurs only on the single chain a/b/c/x; plenty of other
    nodes pad the subtrees so a descendant sweep dwarfs the child chain."""
    pad = [("p", [("q",), ("q",), ("q",)]) for _ in range(6)]
    spec = ("a", [("b", [("c", [("x",), ("x",)])] + pad)] + pad)
    return make_db(spec)


def test_refutation_returns_early_with_no_postings():
    db = deep_db()
    summary = db.document("d").pathsummary
    outcome = rewrite_path(summary, [step(db, Axis.CHILD, "nosuch")])
    assert outcome.refuted
    assert outcome.expanded == 0
    assert outcome.postings is None
    assert outcome.evaluation.cardinality == 0.0


def test_descendant_single_suffix_expands_to_child_chain():
    db = deep_db()
    summary = db.document("d").pathsummary
    outcome = rewrite_path(summary, [step(db, Axis.DESCENDANT, "x")])
    assert not outcome.refuted
    assert outcome.expanded == 1
    assert [s.axis for s in outcome.steps] == [Axis.CHILD] * 4
    names = [s.test.tag for s in outcome.steps]
    assert names == [db.tags.lookup(n) for n in ("a", "b", "c", "x")]
    # the expansion is an equivalence: exact cardinality is preserved
    assert outcome.evaluation.exact
    assert outcome.evaluation.cardinality == 2.0
    assert outcome.postings is not None


def test_descendant_multi_suffix_blocks_expansion():
    # x lives on two distinct chains: no single child chain is equivalent
    spec = ("a", [("b", [("x",)]), ("c", [("x",)])])
    db = make_db(spec)
    summary = db.document("d").pathsummary
    outcome = rewrite_path(summary, [step(db, Axis.DESCENDANT, "x")])
    assert outcome.expanded == 0
    assert [s.axis for s in outcome.steps] == [Axis.DESCENDANT]


def test_tiny_document_fails_the_cost_gate():
    # expansion is possible (single suffix) but sweeps no fewer nodes
    db = make_db(("a", [("x",)]))
    summary = db.document("d").pathsummary
    outcome = rewrite_path(summary, [step(db, Axis.DESCENDANT, "x")])
    assert outcome.expanded == 0


def test_wildcard_and_dos_steps_never_expand():
    db = deep_db()
    summary = db.document("d").pathsummary
    wild = rewrite_path(summary, [step(db, Axis.DESCENDANT, None, kind="wildcard")])
    assert wild.expanded == 0
    dos = rewrite_path(summary, [step(db, Axis.DESCENDANT_OR_SELF, "x")])
    assert dos.expanded == 0


def test_expansion_keeps_predicates_on_the_final_step():
    db = deep_db()
    summary = db.document("d").pathsummary

    class Pred:
        def __init__(self, steps):
            self.steps = steps

    predicate = Pred([step(db, Axis.CHILD, "x")])
    tag = db.tags.lookup("c")
    with_pred = CompiledStep(
        Axis.DESCENDANT, CompiledNodeTest.compile("name", Axis.DESCENDANT, tag), [predicate]
    )
    outcome = rewrite_path(summary, [with_pred])
    assert outcome.expanded == 1
    assert [s.predicates for s in outcome.steps[:-1]] == [[]] * (len(outcome.steps) - 1)
    assert outcome.steps[-1].predicates == [predicate]
    assert not outcome.evaluation.exact  # predicates clear exactness


# ------------------------------------------------- end-to-end equivalences


@pytest.mark.parametrize("plan", ("simple", "xscan", "xschedule"))
def test_expanded_query_results_are_bit_identical(plan):
    db = deep_db()
    compiled = db.prepare("//x", "d", plan)
    (path,) = compiled.path_plans()
    assert [s.axis for s in path.steps] == [Axis.CHILD] * 4  # really expanded
    on = db.execute("//x", doc="d", plan=plan)
    off = db.execute("//x", doc="d", plan=plan, options=EvalOptions(pathsummary=False))
    assert on.nodes == off.nodes


def test_expansion_is_sound_before_sibling_steps():
    """The PR 5 hazard anchor: the descendant-root R-optimisation is
    unsound before sibling axes because it changes the *node set*; the
    summary expansion replaces an equal node set, so sibling steps after
    an expanded step keep their exact semantics."""
    spec = ("a", [("b", [("c", [("x",), ("y",), ("x",), ("z",)])])])
    db = make_db(spec)
    query = "//x/following-sibling::*"
    for plan in ("simple", "xscan", "xschedule"):
        on = db.execute(query, doc="d", plan=plan)
        off = db.execute(
            query, doc="d", plan=plan, options=EvalOptions(pathsummary=False)
        )
        assert on.nodes == off.nodes, plan


def test_refuted_query_skips_all_io():
    db = deep_db()
    for plan in ("simple", "xscan", "xschedule", "xscan-shared", "auto"):
        result = db.execute("/a/b/nosuch", doc="d", plan=plan)
        assert result.nodes == []
        assert result.stats.paths_refuted == 1
        assert result.stats.pages_requested == 0
        assert result.stats.clusters_visited == 0
        assert result.total_time == 0.0


def test_refuted_plan_explains_as_const_empty():
    db = deep_db()
    compiled = db.prepare("/a/nosuch", "d", "auto")
    assert "refuted" in compiled.explain()


def test_rewrite_disabled_keeps_steps_untouched():
    db = deep_db()
    compiled = db.prepare("//x", "d", "xscan", EvalOptions(pathsummary=False))
    (path,) = compiled.path_plans()
    assert [s.axis for s in path.steps] == [Axis.DESCENDANT]
    assert path.postings is None
    assert not path.refuted
