"""Tests for the plan compiler and the AUTO cost model."""

import pytest

from repro import Database, EvalOptions, ImportOptions, UnsupportedQueryError
from repro.axes import Axis
from repro.model.builder import tree_from_nested
from repro.sim.disk import DiskGeometry
from repro.xpath.compile import PlanKind, _rewrite_descendant, compile_query
from repro.xpath.estimate import estimate_path
from repro.algebra.steps import CompiledNodeTest, CompiledStep

from tests.conftest import make_random_tree


def db_with(tree_spec):
    db = Database(page_size=512, buffer_pages=32)
    tree = tree_from_nested(tree_spec, db.tags)
    db.add_tree(tree, "d", ImportOptions(page_size=512))
    return db


def compiled_steps(db, query, plan="xschedule", **options):
    compiled = compile_query(
        query, db.document("d"), db.tags, plan=plan,
        options=EvalOptions(**options), geometry=db.geometry,
    )
    node = compiled.expr
    if isinstance(node, tuple):
        node = node[1]
    return node.steps


def test_rewrite_merges_descendant_or_self():
    db = db_with(("a", [("b",)]))
    steps = compiled_steps(db, "/a//b")
    assert [s.axis for s in steps] == [Axis.CHILD, Axis.DESCENDANT]


def test_rewrite_can_be_disabled():
    db = db_with(("a", [("b",)]))
    steps = compiled_steps(db, "/a//b", rewrite_descendant=False)
    assert [s.axis for s in steps] == [
        Axis.CHILD,
        Axis.DESCENDANT_OR_SELF,
        Axis.CHILD,
    ]


def test_rewrite_chains_of_double_slashes():
    db = db_with(("a", [("b",)]))
    steps = compiled_steps(db, "//a//b")
    assert [s.axis for s in steps] == [Axis.DESCENDANT, Axis.DESCENDANT]


def test_unknown_tag_compiles_to_unmatchable_test():
    db = db_with(("a",))
    steps = compiled_steps(db, "/nonexistent")
    assert steps[0].test.tag == -1
    result = db.execute("/nonexistent", doc="d", plan="xschedule")
    assert result.nodes == []


def test_predicates_rejected_by_cost_plans():
    db = db_with(("a", [("b",)]))
    with pytest.raises(UnsupportedQueryError):
        db.execute("/a[b]", doc="d", plan="xschedule")
    # but the SIMPLE plan evaluates them
    result = db.execute("/a[b]", doc="d", plan="simple")
    assert len(result.nodes) == 1


def test_absolute_predicates_rejected_everywhere():
    db = db_with(("a", [("b",)]))
    with pytest.raises(UnsupportedQueryError):
        db.execute("/a[/a]", doc="d", plan="simple")


def test_nodeset_arithmetic_rejected():
    db = db_with(("a", [("b",)]))
    with pytest.raises(UnsupportedQueryError):
        db.execute("/a + 1", doc="d")


def test_plan_kinds_reported():
    db = db_with(("a", [("b",)]))
    result = db.execute("count(/a)+count(/a/b)", doc="d", plan="simple")
    assert result.plan_kinds == [PlanKind.SIMPLE, PlanKind.SIMPLE]
    assert result.value == 2.0


# ------------------------------------------------------------- estimation


def name_step(tags, name, axis=Axis.CHILD):
    return CompiledStep(axis, CompiledNodeTest.compile("name", axis, tags.lookup(name)))


def test_estimate_child_cardinality_exact_on_uniform_schema():
    db = Database(page_size=512, buffer_pages=8)
    tree = tree_from_nested(
        ("a", [("b", [("c",), ("c",)]), ("b", [("c",)])]), db.tags
    )
    db.add_tree(tree, "d", ImportOptions(page_size=512))
    stats = db.document("d").statistics
    steps = [
        name_step(db.tags, "a"),
        name_step(db.tags, "b"),
        name_step(db.tags, "c"),
    ]
    estimate = estimate_path(stats, steps)
    assert estimate.result_cardinality == pytest.approx(3.0)


def test_estimate_descendant_visits_more_than_result():
    tags_db = Database(page_size=512, buffer_pages=8)
    tree = make_random_tree(tags_db.tags, seed=3, n_top=30)
    tags_db.add_tree(tree, "d", ImportOptions(page_size=512))
    stats = tags_db.document("d").statistics
    steps = [
        CompiledStep(
            Axis.DESCENDANT,
            CompiledNodeTest.compile("name", Axis.DESCENDANT, tags_db.tags.lookup("a")),
        )
    ]
    estimate = estimate_path(stats, steps)
    assert estimate.visited_nodes > estimate.result_cardinality
    assert 0 < estimate.visited_fraction <= 1.0


def test_auto_prefers_scan_for_low_selectivity(xmark_small):
    db, _ = xmark_small
    result = db.execute("count(/site//description)", doc="xmark", plan="auto")
    assert result.plan_kinds == [PlanKind.XSCAN]


def test_auto_prefers_schedule_for_high_selectivity(xmark_small):
    db, _ = xmark_small
    # a path visiting almost nothing: XSchedule must win at any size
    result = db.execute("count(/site/regions/africa)", doc="xmark", plan="auto")
    assert result.plan_kinds == [PlanKind.XSCHEDULE]


def test_auto_crossover_depends_on_document_size(xmark_small):
    """Q15 on a tiny document legitimately favours the scan; on larger
    documents the random-I/O side shrinks relative to the scan and the
    chooser flips to XSchedule (as observed in the benchmarks)."""
    db, _ = xmark_small
    query = (
        "/site/closed_auctions/closed_auction/annotation/description"
        "/parlist/listitem/parlist/listitem/text/emph/keyword/text()"
    )
    result = db.execute(query, doc="xmark", plan="auto")
    assert result.plan_kinds[0] in (PlanKind.XSCAN, PlanKind.XSCHEDULE)
