"""Tests for the reference (logical-tree) evaluator."""

import pytest

from repro.errors import UnsupportedQueryError
from repro.model.builder import tree_from_nested
from repro.xpath.reference import evaluate_query


@pytest.fixture()
def tree():
    #        root
    #   a          a
    #  b c[x=1]    b
    #    "t"       d
    return tree_from_nested(
        (
            "root",
            [
                ("a", [("b",), ("c", {"x": "1"}, ["t"])]),
                ("a", [("b", [("d",)])]),
            ],
        )
    )


def names(tree, result):
    return [tree.tag_name(n) if tree.kind_of(n).name != "TEXT" else "#t" for n in result]


def test_child_paths(tree):
    assert len(evaluate_query(tree, "/root/a")) == 2
    assert len(evaluate_query(tree, "/root/a/b")) == 2
    assert len(evaluate_query(tree, "/root/b")) == 0


def test_descendant(tree):
    assert len(evaluate_query(tree, "//b")) == 2
    assert len(evaluate_query(tree, "//a//d")) == 1


def test_wildcard_and_kind_tests(tree):
    assert len(evaluate_query(tree, "/root/*")) == 2
    assert len(evaluate_query(tree, "//c/text()")) == 1
    assert len(evaluate_query(tree, "//node()")) == len(tree) - 1 - 1  # minus root doc, attr


def test_attribute_axis(tree):
    assert len(evaluate_query(tree, "//c/@x")) == 1
    assert len(evaluate_query(tree, "//c/@missing")) == 0
    # attributes are not selected by the child axis
    assert len(evaluate_query(tree, "//c/*")) == 0


def test_upward_axes(tree):
    assert len(evaluate_query(tree, "//d/ancestor::a")) == 1
    assert len(evaluate_query(tree, "//b/..")) == 2


def test_sibling_axes(tree):
    assert len(evaluate_query(tree, "//b/following-sibling::c")) == 1
    assert len(evaluate_query(tree, "//c/preceding-sibling::b")) == 1


def test_predicates(tree):
    assert len(evaluate_query(tree, "//a[b/d]")) == 1
    assert len(evaluate_query(tree, "//a[missing]")) == 0


def test_count_and_arithmetic(tree):
    assert evaluate_query(tree, "count(//a)") == 2.0
    assert evaluate_query(tree, "count(//a) + count(//b) - 1") == 3.0


def test_results_in_document_order(tree):
    result = evaluate_query(tree, "//b | //c" if False else "//*")
    assert result == sorted(result)


def test_root_query(tree):
    assert evaluate_query(tree, "/") == [tree.root]


def test_unsupported_rejected(tree):
    with pytest.raises(UnsupportedQueryError):
        evaluate_query(tree, "count(//a) + //b")
