"""Tests for union expressions and value predicates."""

import pytest

from repro import Database, UnsupportedQueryError
from repro.xpath.ast import Comparison, CountCall, StringLiteral, UnionExpr
from repro.xpath.parser import parse_query
from repro.xpath.reference import evaluate_query

XML = """
<library>
  <book id="b1" genre="novel"><title>Alpha</title><year>1990</year></book>
  <book id="b2" genre="essay"><title>Beta</title><year>2001</year></book>
  <journal id="j1"><title>Gamma</title></journal>
</library>
"""


@pytest.fixture(scope="module")
def db():
    database = Database(page_size=512, buffer_pages=32)
    database.load_xml(XML, "d")
    return database


# ------------------------------------------------------------------ parsing


def test_union_parses():
    expr = parse_query("//book | //journal")
    assert isinstance(expr, UnionExpr)
    assert len(expr.paths) == 2


def test_count_of_union_parses():
    expr = parse_query("count(//book | //journal)")
    assert isinstance(expr, CountCall)
    assert isinstance(expr.path, UnionExpr)


def test_comparison_predicate_parses():
    expr = parse_query('//book[@genre = "novel"]')
    predicate = expr.path.steps[-1].predicates[0]
    assert isinstance(predicate, Comparison)
    assert isinstance(predicate.right, StringLiteral)


# ---------------------------------------------------------------- reference


def test_reference_union(db):
    from repro.xml.parser import parse_document

    tree = parse_document(XML)
    result = evaluate_query(tree, "//book | //journal")
    assert len(result) == 3
    # overlap is deduplicated
    overlap = evaluate_query(tree, "//book | //*")
    assert len(overlap) == len(evaluate_query(tree, "//*"))


def test_reference_value_predicates(db):
    from repro.xml.parser import parse_document

    tree = parse_document(XML)
    assert len(evaluate_query(tree, '//book[@genre = "novel"]')) == 1
    assert len(evaluate_query(tree, '//book[@genre != "novel"]')) == 1
    assert len(evaluate_query(tree, '//book[title = "Beta"]')) == 1
    assert len(evaluate_query(tree, '//book[year = 1990]')) == 1
    assert len(evaluate_query(tree, '//*["x" = missing]')) == 0


# ------------------------------------------------------------------- engine


def test_union_query_all_plans(db):
    for plan in ("simple", "xschedule", "xscan", "xscan-shared"):
        result = db.execute("//book | //journal", doc="d", plan=plan)
        names = [db.node_info(n)[1] for n in result.nodes]
        assert names == ["book", "book", "journal"], plan


def test_union_dedup(db):
    result = db.execute("//book | //book/..//book", doc="d", plan="simple")
    assert len(result.nodes) == 2


def test_count_of_union(db):
    for plan in ("simple", "xschedule", "xscan", "xscan-shared"):
        assert db.execute("count(//book | //journal)", doc="d", plan=plan).value == 3.0


def test_value_predicate_simple_plan(db):
    result = db.execute('//book[@genre = "novel"]/title', doc="d", plan="simple")
    assert len(result.nodes) == 1
    nid = result.nodes[0]
    # the element string value crosses to its text child
    text = db.execute(
        '//book[title = "Alpha"]/@id', doc="d", plan="simple"
    )
    assert db.node_info(text.nodes[0])[2] == "b1"


def test_value_predicate_flipped_operands(db):
    result = db.execute('//book["essay" = @genre]', doc="d", plan="simple")
    assert len(result.nodes) == 1


def test_value_predicates_rejected_by_cost_plans(db):
    with pytest.raises(UnsupportedQueryError):
        db.execute('//book[@genre = "novel"]', doc="d", plan="xschedule")


def test_numeric_comparison_top_level(db):
    assert db.execute("count(//book) = 2", doc="d", plan="simple").value == 1.0
    assert db.execute("count(//book) != 2", doc="d", plan="simple").value == 0.0


def test_path_comparison_top_level_rejected(db):
    with pytest.raises(UnsupportedQueryError):
        db.execute('//book = "x"', doc="d", plan="simple")


def test_explain_renders_union(db):
    compiled = db.prepare("//book | //journal", doc="d", plan="xschedule")
    assert "union" in compiled.explain()
