"""Unit tests for the cardinality estimator and I/O chooser."""

import pytest

from repro import Database, EvalOptions, ImportOptions
from repro.axes import Axis
from repro.algebra.steps import CompiledNodeTest, CompiledStep
from repro.model.builder import tree_from_nested
from repro.sim.disk import DiskGeometry
from repro.xpath.estimate import choose_io_operator, estimate_path


def make_db(spec):
    db = Database(page_size=512, buffer_pages=16)
    tree = tree_from_nested(spec, db.tags)
    db.add_tree(tree, "d", ImportOptions(page_size=512))
    return db


def step(db, axis, name=None, kind="name"):
    tag = db.tags.lookup(name) if name else None
    test_kind = kind if name is None and kind != "name" else "name" if name else kind
    return CompiledStep(axis, CompiledNodeTest.compile(test_kind, axis, tag))


def test_child_chain_exact():
    db = make_db(("a", [("b", [("c",), ("c",)]), ("b", [("c",)]), ("d",)]))
    stats = db.document("d").statistics
    steps = [step(db, Axis.CHILD, "a"), step(db, Axis.CHILD, "b"), step(db, Axis.CHILD, "c")]
    estimate = estimate_path(stats, steps)
    assert estimate.result_cardinality == pytest.approx(3.0)
    # matching children at each level cost potential crossings: 1 + 2 + 3
    assert estimate.visited_nodes >= 6


def test_descendant_step_counts_whole_subtrees():
    db = make_db(("a", [("b", [("c", [("c",)])])]))
    stats = db.document("d").statistics
    steps = [step(db, Axis.DESCENDANT, "c")]
    estimate = estimate_path(stats, steps)
    assert estimate.result_cardinality == pytest.approx(2.0)
    assert estimate.visited_fraction > 0.5


def test_unknown_tag_estimates_zero():
    db = make_db(("a", [("b",)]))
    stats = db.document("d").statistics
    steps = [step(db, Axis.CHILD, None, kind="name")]
    steps[0] = CompiledStep(Axis.CHILD, CompiledNodeTest.compile("name", Axis.CHILD, None))
    estimate = estimate_path(stats, steps)
    assert estimate.result_cardinality == 0.0


def test_empty_path_is_context_only():
    db = make_db(("a",))
    stats = db.document("d").statistics
    estimate = estimate_path(stats, [])
    assert estimate.result_cardinality == pytest.approx(1.0)


def test_chooser_prefers_schedule_without_statistics():
    db = make_db(("a",))
    doc = db.document("d")
    doc.statistics = None
    steps = [step(db, Axis.DESCENDANT, "a")]
    assert choose_io_operator(doc, steps, DiskGeometry()) == "xschedule"


def test_chooser_scales_with_visited_fraction():
    # the document must be large enough that streaming it all is NOT
    # trivially cheaper than a couple of random reads
    wide = Database(page_size=256, buffer_pages=16)
    children = [("x", [("y",)])] * 800
    tree = tree_from_nested(("root", children), wide.tags)
    wide.add_tree(tree, "d", ImportOptions(page_size=256))
    doc = wide.document("d")
    geo = DiskGeometry(page_size=256)
    full_scan_steps = [step(wide, Axis.DESCENDANT, "y")]
    selective_steps = [step(wide, Axis.CHILD, "nothing", kind="name")]
    assert choose_io_operator(doc, full_scan_steps, geo) == "xscan"
    assert choose_io_operator(doc, selective_steps, geo) == "xschedule"


def test_zero_tag_count_does_not_divide():
    """A stored tag count of 0 (stale/degenerate statistics) must yield a
    crude estimate, never a ZeroDivisionError."""
    db = make_db(("a", [("b", [("c",)])]))
    stats = db.document("d").statistics
    a = db.tags.lookup("a")
    stats.tag_counts[a] = 0
    steps = [step(db, Axis.CHILD, "a"), step(db, Axis.CHILD, "b")]
    estimate = estimate_path(stats, steps)
    assert estimate.result_cardinality >= 0.0


def test_empty_document_statistics():
    """A document with no element pairs estimates without crashing."""
    db = make_db(("a",))
    stats = db.document("d").statistics
    steps = [step(db, Axis.CHILD, "a"), step(db, Axis.DESCENDANT, "b")]
    estimate = estimate_path(stats, steps)
    assert estimate.result_cardinality == 0.0
    assert 0.0 <= estimate.visited_fraction <= 1.0


def test_zero_selectivity_step_short_circuits():
    """A step no node can match empties the frontier; later steps add
    nothing and the estimate stays finite."""
    db = make_db(("a", [("b",)] * 4))
    stats = db.document("d").statistics
    steps = [
        step(db, Axis.CHILD, "nothing", kind="name"),
        step(db, Axis.DESCENDANT, "b"),
    ]
    estimate = estimate_path(stats, steps)
    assert estimate.result_cardinality == 0.0
    assert estimate.visited_nodes >= 1.0


def test_chooser_prefers_scan_on_tiny_documents():
    """On a handful of small pages, streaming everything beats any seek
    at all — the chooser should say so."""
    db = make_db(("a", [("b",)] * 30))
    steps = [step(db, Axis.CHILD, "nothing", kind="name")]
    geo = DiskGeometry(page_size=512)
    # either answer is defensible at this scale; the call must simply be
    # consistent with the cost inequality it implements
    choice = choose_io_operator(db.document("d"), steps, geo)
    assert choice in ("xscan", "xschedule")


def test_descendant_or_self_counts_context_nodes():
    """Regression: ``descendant-or-self`` tests every context node itself,
    and that work must land in ``visited_nodes``.

    Hand-computed tree ``#doc -> a -> (b, b)``:

    * ``child::a``   — 1 initial context + 1 matching child  -> visited 2
    * ``dos::b``     — sweeps the 2 descendants (+2) and tests the ``a``
      context node itself (+1)                               -> visited 5

    The old code skipped the self-contribution and reported 4.
    """
    db = make_db(("a", [("b",), ("b",)]))
    stats = db.document("d").statistics
    steps = [step(db, Axis.CHILD, "a"), step(db, Axis.DESCENDANT_OR_SELF, "b")]
    estimate = estimate_path(stats, steps)
    assert estimate.result_cardinality == pytest.approx(2.0)
    assert estimate.visited_nodes == pytest.approx(5.0)
    # with a node() test the self node also matches and joins the result
    node_steps = [
        step(db, Axis.CHILD, "a"),
        CompiledStep(
            Axis.DESCENDANT_OR_SELF,
            CompiledNodeTest.compile("node", Axis.DESCENDANT_OR_SELF, None),
        ),
    ]
    estimate = estimate_path(stats, node_steps)
    assert estimate.result_cardinality == pytest.approx(3.0)
    assert estimate.visited_nodes == pytest.approx(5.0)


@pytest.mark.parametrize("axis", (Axis.PARENT, Axis.FOLLOWING_SIBLING))
def test_upward_fallback_clamped_by_frontier(axis):
    """Regression: the upward/sibling fallback's per-tag ``+ 1.0`` floor
    summed over a wide tag dictionary used to *amplify* cardinality —
    one context node stepping ``parent::node()`` over a 40-tag store
    came back as ~40 nodes.  The summed fallback is now rescaled so it
    never exceeds the incoming frontier."""
    db = make_db(("root", [(f"t{i}",) for i in range(40)]))
    stats = db.document("d").statistics
    steps = [
        step(db, Axis.CHILD, "root"),
        CompiledStep(axis, CompiledNodeTest.compile("node", axis, None)),
    ]
    estimate = estimate_path(stats, steps)
    assert estimate.result_cardinality == pytest.approx(1.0)
    # and the clamp composes: later steps see a sane frontier
    more = steps + [step(db, Axis.DESCENDANT, "t0")]
    follow_on = estimate_path(stats, more)
    assert follow_on.result_cardinality <= stats.n_nodes


def test_synopsis_occupancy_fixes_skewed_layout_choice():
    """Regression: the uniform nodes-per-page guess mis-chooses on skew.

    The document below has ~120 fat pages (one padded element each) and
    a few dense pages holding all 600 ``y`` nodes.  The uniform estimate
    spreads the ``y`` candidates over the whole document, concludes the
    random reads would touch a large share of the pages and picks the
    sequential scan.  The synopsis knows every candidate cluster, caps
    the visited-page estimate at a handful and picks XSchedule — which
    really is the faster plan.
    """
    from repro.storage.importer import ClusterPolicy

    db = Database(page_size=8192, buffer_pages=256)
    bulk = [("x", ["pad " * 1500]) for _ in range(120)]
    spec = ("root", bulk + [("h", [("y",) for _ in range(600)])])
    tree = tree_from_nested(spec, db.tags)
    db.add_tree(
        tree, "d", ImportOptions(page_size=8192, policy=ClusterPolicy.SEQUENTIAL)
    )
    doc = db.document("d")
    # the layout really is skewed: all y's in a few clusters
    assert doc.synopsis.clusters_with_tag(db.tags.lookup("y")) <= 8
    steps = [
        step(db, Axis.CHILD, "root"),
        step(db, Axis.CHILD, "h"),
        step(db, Axis.CHILD, "y"),
    ]
    geo = DiskGeometry()
    assert choose_io_operator(doc, steps, geo, use_synopsis=False) == "xscan"
    assert choose_io_operator(doc, steps, geo, use_synopsis=True) == "xschedule"
    # ground truth: the synopsis-backed choice wins on simulated time
    scheduled = db.execute("/root/h/y", doc="d", plan="xschedule")
    scanned = db.execute(
        "/root/h/y", doc="d", plan="xscan", options=EvalOptions(synopsis=False)
    )
    assert scheduled.nodes == scanned.nodes
    assert scheduled.total_time < scanned.total_time
    # AUTO follows the synopsis and lands on the cheap plan
    auto = db.execute("/root/h/y", doc="d", plan="auto")
    assert [kind.value for kind in auto.plan_kinds] == ["xschedule"]


# ------------------------------------------- absent-tag handling (path summary)


def _degenerate_stats_and_summary():
    """Hand-built statistics whose pair table references a source tag the
    ``tag_counts`` dict has no entry for, plus a matching path summary.

    Tag ids: 5 = ``a`` (the root element), 6 = ``b`` (its children).
    The summary knows the true structure; the statistics are degenerate
    on purpose — the document tag is missing from ``tag_counts``.
    """
    from repro.model.tags import DOCUMENT_TAG
    from repro.storage.pathsummary import PathSummary
    from repro.storage.store import DocumentStatistics

    stats = DocumentStatistics(
        n_nodes=4,
        n_elements=3,
        tag_counts={5: 1, 6: 2},  # no DOCUMENT_TAG entry
        child_pairs={(DOCUMENT_TAG, 5): 1, (5, 6): 2},
        desc_pairs={(DOCUMENT_TAG, 5): 1, (DOCUMENT_TAG, 6): 2, (5, 6): 2},
    )
    summary = PathSummary.from_page_rows(
        {0: {((DOCUMENT_TAG,), 0): 1, ((DOCUMENT_TAG, 5), 1): 1, ((DOCUMENT_TAG, 5, 6), 1): 2}}
    )
    return stats, summary


def _raw_step(axis, tag=None, kind="name"):
    test_kind = "name" if tag is not None else kind
    return CompiledStep(axis, CompiledNodeTest.compile(test_kind, axis, tag))


def test_absent_source_tag_contributes_zero_with_summary():
    """Regression (pair-walk site): a live pair count whose source tag is
    absent from ``tag_counts`` used to clamp the divisor to 1 and invent
    cardinality.  With a path summary the absent tag is *known* absent
    and contributes nothing; the statistics-only fallback keeps the
    clamp (a crude guess beats a ZeroDivisionError)."""
    stats, summary = _degenerate_stats_and_summary()
    # the trailing parent step keeps the evaluation inexact, so the
    # estimator walk really runs instead of short-circuiting
    steps = [_raw_step(Axis.CHILD, 5), _raw_step(Axis.PARENT, kind="node")]
    without = estimate_path(stats, steps)
    assert without.result_cardinality > 0.0  # clamped divisor, not a crash
    with_summary = estimate_path(stats, steps, summary=summary)
    assert with_summary.result_cardinality == 0.0


def test_upward_fallback_floor_only_without_summary():
    """Regression (upward-fallback site): the per-tag ``+ 1.0`` smoothing
    floor exists to keep rare tags from rounding to zero when only the
    statistics are available; with a path summary the floor disappears
    and the fallback scales with the true frontier."""
    from repro.model.tags import DOCUMENT_TAG
    from repro.storage.pathsummary import PathSummary
    from repro.storage.store import DocumentStatistics

    stats = DocumentStatistics(
        n_nodes=1000,
        n_elements=999,
        tag_counts={DOCUMENT_TAG: 1, 5: 1, 7: 1, 8: 997},
        child_pairs={(DOCUMENT_TAG, 5): 1, (5, 7): 1, (5, 8): 997},
        desc_pairs={(DOCUMENT_TAG, 5): 1, (DOCUMENT_TAG, 7): 1, (DOCUMENT_TAG, 8): 997,
                    (5, 7): 1, (5, 8): 997},
    )
    summary = PathSummary.from_page_rows(
        {0: {((DOCUMENT_TAG,), 0): 1, ((DOCUMENT_TAG, 5), 1): 1,
             ((DOCUMENT_TAG, 5, 7), 1): 1, ((DOCUMENT_TAG, 5, 8), 1): 997}}
    )
    steps = [_raw_step(Axis.CHILD, 5), _raw_step(Axis.CHILD, 7), _raw_step(Axis.PARENT, 5)]
    without = estimate_path(stats, steps)
    assert without.result_cardinality == pytest.approx(1.0)  # smoothing floor
    with_summary = estimate_path(stats, steps, summary=summary)
    assert with_summary.result_cardinality == pytest.approx(1.0 / 1000.0)


def test_summary_short_circuits_exact_and_refuted_paths():
    stats, summary = _degenerate_stats_and_summary()
    exact = estimate_path(stats, [_raw_step(Axis.CHILD, 5), _raw_step(Axis.CHILD, 6)],
                          summary=summary)
    assert exact.result_cardinality == pytest.approx(2.0)
    refuted = estimate_path(stats, [_raw_step(Axis.CHILD, 99)], summary=summary)
    assert refuted.result_cardinality == 0.0
