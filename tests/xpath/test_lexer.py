"""Tests for the XPath tokenizer."""

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath.lexer import tokenize


def types(query):
    return [t.type for t in tokenize(query)]


def test_simple_path():
    assert types("/a/b") == ["SLASH", "NAME", "SLASH", "NAME", "EOF"]


def test_double_slash_vs_slash():
    assert types("//a") == ["DOUBLE_SLASH", "NAME", "EOF"]


def test_axis_separator():
    assert types("child::a") == ["NAME", "AXIS_SEP", "NAME", "EOF"]


def test_dots():
    assert types("./..") == ["DOT", "SLASH", "DOTDOT", "EOF"]


def test_names_may_contain_hyphens_and_dots():
    tokens = tokenize("closed_auctions/foo-bar/v1.2x")
    names = [t.value for t in tokens if t.type == "NAME"]
    assert names == ["closed_auctions", "foo-bar", "v1.2x"]


def test_trailing_dot_not_swallowed_by_name():
    # "a/." must lex as NAME SLASH DOT, not NAME SLASH-with-dot
    assert types("a/.") == ["NAME", "SLASH", "DOT", "EOF"]


def test_numbers():
    tokens = tokenize("3 + 4.25")
    assert [t.type for t in tokens] == ["NUMBER", "PLUS", "NUMBER", "EOF"]
    assert tokens[2].value == "4.25"


def test_function_call_shape():
    assert types("count(/a)") == ["NAME", "LPAREN", "SLASH", "NAME", "RPAREN", "EOF"]


def test_predicates_and_attributes():
    assert types("a[b]/@id") == [
        "NAME", "LBRACKET", "NAME", "RBRACKET", "SLASH", "AT", "NAME", "EOF",
    ]


def test_whitespace_ignored():
    assert types("  /a \t / b \n") == types("/a/b")


def test_positions_recorded():
    tokens = tokenize("/abc/def")
    assert tokens[1].position == 1
    assert tokens[3].position == 5


def test_unexpected_character_rejected():
    with pytest.raises(XPathSyntaxError):
        tokenize("/a/#b")


def test_star_and_pipe():
    assert types("*|a") == ["STAR", "PIPE", "NAME", "EOF"]
