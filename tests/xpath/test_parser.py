"""Tests for the XPath parser."""

import pytest

from repro.axes import Axis
from repro.errors import XPathSyntaxError
from repro.xpath.ast import BinaryOp, CountCall, NumberLiteral, PathExpr
from repro.xpath.parser import parse_path, parse_query


def steps_of(query):
    expr = parse_query(query)
    assert isinstance(expr, PathExpr)
    return expr.path.steps


def test_abbreviated_child_steps():
    steps = steps_of("/a/b")
    assert [s.axis for s in steps] == [Axis.CHILD, Axis.CHILD]
    assert [s.test.name for s in steps] == ["a", "b"]


def test_double_slash_expands_to_descendant_or_self_node():
    steps = steps_of("/a//b")
    assert [s.axis for s in steps] == [
        Axis.CHILD,
        Axis.DESCENDANT_OR_SELF,
        Axis.CHILD,
    ]
    assert steps[1].test.kind == "node"


def test_leading_double_slash():
    steps = steps_of("//b")
    assert steps[0].axis == Axis.DESCENDANT_OR_SELF
    assert steps[1].test.name == "b"


def test_explicit_axes():
    steps = steps_of("ancestor-or-self::a/following-sibling::*")
    assert steps[0].axis == Axis.ANCESTOR_OR_SELF
    assert steps[1].axis == Axis.FOLLOWING_SIBLING
    assert steps[1].test.kind == "wildcard"


def test_dot_and_dotdot():
    steps = steps_of("./..")
    assert steps[0].axis == Axis.SELF
    assert steps[1].axis == Axis.PARENT


def test_attribute_abbreviation():
    steps = steps_of("a/@id")
    assert steps[1].axis == Axis.ATTRIBUTE
    assert steps[1].test.name == "id"


def test_kind_tests():
    steps = steps_of("a/text()")
    assert steps[1].test.kind == "text"
    steps = steps_of("a/node()")
    assert steps[1].test.kind == "node"


def test_predicates_parsed():
    steps = steps_of("a[b/c][d]")
    assert len(steps[0].predicates) == 2
    inner = steps[0].predicates[0]
    assert isinstance(inner, PathExpr)
    assert len(inner.path.steps) == 2


def test_count_call():
    expr = parse_query("count(/a//b)")
    assert isinstance(expr, CountCall)
    assert expr.path.absolute


def test_arithmetic_left_associative():
    expr = parse_query("count(/a) + count(/b) - 2")
    assert isinstance(expr, BinaryOp)
    assert expr.op == "-"
    assert isinstance(expr.right, NumberLiteral)
    assert isinstance(expr.left, BinaryOp)
    assert expr.left.op == "+"


def test_parenthesised_expression():
    expr = parse_query("(count(/a) + 1)")
    assert isinstance(expr, BinaryOp)


def test_root_only_path():
    expr = parse_query("/")
    assert isinstance(expr, PathExpr)
    assert expr.path.absolute
    assert expr.path.steps == []


def test_relative_path():
    expr = parse_query("a/b")
    assert isinstance(expr, PathExpr)
    assert not expr.path.absolute


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "/a/",
        "a//",
        "count(/a",
        "count()",
        "a[",
        "a]",
        "a[]",
        "sum(/a)",
        "unknown-axis::a",
        "@",
        "a + ",
        "a | 3",
        "count(1)",
        "'unterminated",
    ],
)
def test_syntax_errors(bad):
    with pytest.raises(XPathSyntaxError):
        parse_query(bad)


def test_parse_path_rejects_expressions():
    with pytest.raises(XPathSyntaxError):
        parse_path("count(/a)")


def test_str_round_trip_reparses():
    for query in ["/a//b", "count(/a/b)+2", "a[b]/@id", "//*/text()"]:
        printed = str(parse_query(query))
        reparsed = parse_query(printed)
        assert str(reparsed) == printed
