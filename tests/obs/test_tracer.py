"""Unit tests for the tracer: ring semantics, rollups, exports."""

import json

import pytest

from repro.obs import TraceEvent, Tracer, format_metrics
from repro.sim.stats import Stats


def test_ring_is_bounded_but_counters_survive_overflow():
    tracer = Tracer(capacity=4)
    for i in range(10):
        tracer.event(float(i), "io", "request", page=i)
        tracer.count("io_requests")
    assert len(tracer.events) == 4
    assert tracer.events_recorded == 10
    assert tracer.dropped == 6
    # the online registry is exact even though 6 events fell off the ring
    assert tracer.counters["io_requests"] == 10
    assert [e.page for e in tracer.events] == [6, 7, 8, 9]


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_mark_and_summary_diff_like_stats_snapshot():
    tracer = Tracer()
    tracer.count("pages_read", 3)
    mark = tracer.mark()
    tracer.count("pages_read", 2)
    tracer.count("seeks")
    summary = tracer.summary(since=mark)
    assert summary.counter("pages_read") == 2
    assert summary.counter("seeks") == 1
    assert summary.counter("never_touched") == 0
    # cumulative summary still sees everything
    assert tracer.summary().counter("pages_read") == 5


def test_reconcile_is_exact_and_catches_tampering():
    tracer = Tracer()
    stats = Stats()
    stats.pages_read = 4
    stats.seeks = 2
    tracer.count("pages_read", 4)
    tracer.count("seeks", 2)
    assert tracer.summary().reconcile(stats) == {}
    stats.seeks += 1  # an unmirrored increment must surface
    assert tracer.summary().reconcile(stats) == {"seeks": (2, 3)}


def test_operator_rollups():
    tracer = Tracer()
    tracer.op_call("XStep", produced=True)
    tracer.op_call("XStep", produced=False)
    tracer.op_span("XStep", t0=1.0, t1=3.5, out=1)
    roll = tracer.summary().operators["XStep"]
    assert roll["calls"] == 2
    assert roll["out"] == 1
    assert roll["opens"] == 1
    assert roll["busy"] == pytest.approx(2.5)


def test_cluster_heatmap_and_retry_histogram():
    tracer = Tracer()
    for page in (7, 7, 7, 3):
        tracer.cluster_read(page)
    tracer.io_retry(1)
    tracer.io_retry(1)
    tracer.io_retry(2)
    summary = tracer.summary()
    assert summary.hottest_clusters(1) == [(7, 3)]
    assert summary.retry_histogram == {1: 2, 2: 1}


def test_jsonl_export_round_trips(tmp_path):
    tracer = Tracer()
    tracer.event(0.5, "io", "request", page=9)
    tracer.event(1.0, "disk", "service", page=9, dur=0.25, args={"outcome": "ok"})
    path = tmp_path / "trace.jsonl"
    assert tracer.export_jsonl(str(path)) == 2
    lines = path.read_text(encoding="utf-8").splitlines()
    records = [json.loads(line) for line in lines]
    assert records[0] == {"ts": 0.5, "cat": "io", "name": "request", "page": 9}
    assert records[1]["dur"] == 0.25
    assert records[1]["args"] == {"outcome": "ok"}


def test_chrome_export_shape(tmp_path):
    tracer = Tracer()
    tracer.event(0.001, "io", "request", page=9)
    tracer.event(0.002, "disk", "service", page=9, dur=0.0005)
    path = tmp_path / "trace.json"
    tracer.export_chrome(str(path))
    payload = json.loads(path.read_text(encoding="utf-8"))
    events = payload["traceEvents"]
    # one metadata row per category, then the events themselves
    metas = [e for e in events if e["ph"] == "M"]
    assert {m["args"]["name"] for m in metas} == {"io", "disk"}
    span = next(e for e in events if e["ph"] == "X")
    assert span["ts"] == pytest.approx(2000.0)  # seconds -> microseconds
    assert span["dur"] == pytest.approx(500.0)
    instant = next(e for e in events if e["ph"] == "i")
    assert instant["args"]["page"] == 9


def test_format_metrics_renders_the_live_sections():
    tracer = Tracer()
    tracer.count("pages_read", 3)
    tracer.cluster_read(5)
    tracer.plan_cache_event(False, "//a", "d", "xscan")
    text = format_metrics(tracer.summary())
    assert "pages_read" in text
    assert "hottest clusters" in text
    assert "plan cache: 0 hits, 1 misses" in text
    assert "events:" in text


def test_trace_event_as_dict_omits_empty_fields():
    event = TraceEvent(1.0, "op", "XScan")
    assert event.as_dict() == {"ts": 1.0, "cat": "op", "name": "XScan"}
