"""End-to-end tracing contract: non-perturbation and exact reconciliation.

The two invariants docs/observability.md promises, exercised through the
whole stack (engine → session → batch, clean and faulty disks):

* installing a tracer never changes the simulated physics — values,
  timings and ``Stats`` are bit-identical to an untraced run;
* ``Result.trace_summary`` reconciles counter-for-counter with
  ``Result.stats``.
"""

import pytest

from repro import PROFILES, Database, Tracer
from tests.conftest import small_database

PLANS = ("simple", "xschedule", "xscan", "xscan-shared")
QUERIES = ("count(//a)", "/root/a/b", "//b//c", "count(//e)")


def _traced_twin(db, tracer, faults=None):
    """A database over the same store, same physics, plus a tracer."""
    return Database(
        page_size=db.store.segment.page_size,
        buffer_pages=db.buffer_pages,
        store=db.store,
        faults=faults,
        tracer=tracer,
    )


@pytest.mark.parametrize("plan", PLANS)
def test_tracing_is_non_perturbing_and_reconciles(plan):
    db, _ = small_database(seed=11)
    tracer = Tracer()
    traced_db = _traced_twin(db, tracer)
    for query in QUERIES:
        vanilla = db.execute(query, doc="d", plan=plan)
        traced = traced_db.execute(query, doc="d", plan=plan)
        assert traced.value == vanilla.value
        assert traced.nodes == vanilla.nodes
        assert traced.total_time == vanilla.total_time
        assert traced.stats.as_dict() == vanilla.stats.as_dict()
        assert vanilla.trace_summary is None
        assert traced.trace_summary is not None
        mismatches = traced.trace_summary.reconcile(traced.stats)
        assert mismatches == {}, f"{plan} {query}: {mismatches}"
    assert tracer.events_recorded > 0


@pytest.mark.parametrize("profile_name", ("transient-errors", "mixed"))
def test_reconciles_under_fault_recovery(profile_name):
    """Retries, backoff and timeouts are mirrored exactly too —
    including the float-valued backoff_wait counter."""
    db, _ = small_database(seed=12)
    vanilla_db = _traced_twin(db, None, faults=PROFILES[profile_name])
    traced_db = _traced_twin(db, Tracer(), faults=PROFILES[profile_name])
    for plan in ("xschedule", "xscan"):
        vanilla = vanilla_db.execute("//b//c", doc="d", plan=plan)
        traced = traced_db.execute("//b//c", doc="d", plan=plan)
        assert traced.total_time == vanilla.total_time
        assert traced.stats.as_dict() == vanilla.stats.as_dict()
        assert traced.trace_summary.reconcile(traced.stats) == {}
    summary = traced_db.env.tracer.summary()
    if summary.counter("retries"):
        assert summary.retry_histogram  # retries land in the histogram


def test_warm_session_runs_reconcile_individually():
    """Per-run summaries on a shared runtime diff against a mark, the
    same discipline as per-run Stats attribution."""
    db, _ = small_database(seed=13)
    tracer = Tracer()
    traced_db = _traced_twin(db, tracer)
    session = traced_db.session(warm=True)
    for query in ("count(//a)", "count(//a)", "//b"):
        result = session.execute(query, doc="d", plan="xschedule")
        assert result.trace_summary is not None
        assert result.trace_summary.reconcile(result.stats) == {}
    summary = tracer.summary()
    assert summary.plan_cache["misses"] == 2
    assert summary.plan_cache["hits"] == 1


def test_batch_attribution_reconciles():
    db, _ = small_database(seed=14)
    tracer = Tracer()
    traced_db = _traced_twin(db, tracer)
    outcome = traced_db.run_batch(
        [("//a", "d", "xscan"), ("//b", "d", "xscan"), ("//a/b", "d", "xschedule")]
    )
    assert outcome.trace_summary is not None
    assert outcome.trace_summary.reconcile(outcome.stats) == {}
    assert tracer.batches["batches"] == 1
    assert tracer.batches["scan_shared"] == 2
    assert tracer.batches["interleaved"] == 1


def test_operator_spans_cover_the_plan():
    db, _ = small_database(seed=15)
    tracer = Tracer()
    traced_db = _traced_twin(db, tracer)
    traced_db.execute("//a/b", doc="d", plan="xschedule")
    summary = tracer.summary()
    assert "XSchedule" in summary.operators
    assert "XAssembly" in summary.operators
    assert summary.operators["XSchedule"]["opens"] >= 1
    # every physical page service shows up in the heatmap, and the
    # heatmap total equals the mirrored pages_read counter
    assert sum(summary.cluster_reads.values()) == summary.counter("pages_read")
