"""Tests for the logical tree, tag dictionary and builder."""

import pytest

from repro.errors import ReproError
from repro.model.builder import TreeBuilder, tree_from_nested
from repro.model.tags import DOCUMENT_TAG, TEXT_TAG, TagDictionary
from repro.model.tree import Kind, NIL, LogicalTree


# ------------------------------------------------------------------- tags


def test_pseudo_tags_preinterned():
    tags = TagDictionary()
    assert tags.name_of(DOCUMENT_TAG) == "#document"
    assert tags.name_of(TEXT_TAG) == "#text"


def test_intern_is_idempotent():
    tags = TagDictionary()
    a = tags.intern("item")
    assert tags.intern("item") == a
    assert tags.lookup("item") == a
    assert tags.lookup("missing") is None
    assert "item" in tags
    assert len(tags) == 3


# ---------------------------------------------------------------- builder


def test_builder_basic_structure():
    builder = TreeBuilder()
    builder.start_element("a")
    builder.attribute("x", "1")
    builder.text("hello")
    builder.start_element("b")
    builder.end_element("b")
    builder.end_element("a")
    tree = builder.finish()
    tree.validate()
    a = next(tree.element_children(tree.root))
    assert tree.tag_name(a) == "a"
    children = list(tree.children(a))
    assert [tree.kind_of(c) for c in children] == [Kind.ATTRIBUTE, Kind.TEXT, Kind.ELEMENT]


def test_builder_rejects_mismatched_end():
    builder = TreeBuilder()
    builder.start_element("a")
    with pytest.raises(ReproError):
        builder.end_element("b")


def test_builder_rejects_unclosed_elements():
    builder = TreeBuilder()
    builder.start_element("a")
    with pytest.raises(ReproError):
        builder.finish()


def test_builder_rejects_attribute_after_content():
    builder = TreeBuilder()
    builder.start_element("a")
    builder.text("x")
    with pytest.raises(ReproError):
        builder.attribute("late", "v")


def test_builder_rejects_attribute_on_root():
    builder = TreeBuilder()
    with pytest.raises(ReproError):
        builder.attribute("x", "v")


def test_builder_rejects_use_after_finish():
    builder = TreeBuilder()
    builder.start_element("a")
    builder.end_element()
    builder.finish()
    with pytest.raises(ReproError):
        builder.start_element("again")


# ------------------------------------------------------------------- tree


def make_sample() -> LogicalTree:
    return tree_from_nested(
        ("a", {"id": "1"}, [("b", ["text1", ("c",)]), ("d",), "text2"])
    )


def test_children_accessors():
    tree = make_sample()
    a = next(tree.element_children(tree.root))
    all_children = list(tree.children(a))
    assert len(all_children) == 4  # attr, b, d, text2
    element_children = list(tree.element_children(a))
    assert len(element_children) == 3
    attrs = list(tree.attributes(a))
    assert len(attrs) == 1
    assert tree.value_of(attrs[0]) == "1"


def test_descendants_preorder():
    tree = make_sample()
    a = next(tree.element_children(tree.root))
    names = [
        tree.tag_name(n) if tree.kind_of(n) == Kind.ELEMENT else "#t"
        for n in tree.descendants(a)
    ]
    assert names == ["b", "#t", "c", "d", "#t"]


def test_subtree_size_and_depth():
    tree = make_sample()
    a = next(tree.element_children(tree.root))
    assert tree.subtree_size(a) == 7
    c = tree.count_tag("c")
    assert c == 1
    assert tree.depth_of(tree.root) == 0
    assert tree.depth_of(a) == 1


def test_parent_links():
    tree = make_sample()
    a = next(tree.element_children(tree.root))
    for child in tree.children(a):
        assert tree.parent_of(child) == a
    assert tree.parent_of(tree.root) == NIL


def test_nested_literal_rejects_garbage():
    with pytest.raises(ReproError):
        tree_from_nested(42)
    with pytest.raises(ReproError):
        tree_from_nested(("a", {}, [], "extra"))
