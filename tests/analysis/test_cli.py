"""The ``python -m repro.analysis`` entry point: exit codes and output.

Scope prefixes are package-relative (``sim/``, ``algebra/``), so the
fixtures are staged into a miniature package layout: linting the staged
directory resolves ``<dir>/sim/clocks.py`` to the scope path
``sim/clocks.py`` exactly as ``src/repro`` resolves for CI.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.analysis.__main__ import main

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture
def staged_tree(tmp_path):
    """Fixture files placed where the default scopes apply to them."""
    (tmp_path / "sim").mkdir()
    (tmp_path / "algebra").mkdir()
    shutil.copy(FIXTURES / "nondeterminism_bad.py", tmp_path / "sim" / "clocks.py")
    shutil.copy(FIXTURES / "slots_bad.py", tmp_path / "algebra" / "tuples.py")
    return tmp_path


def test_clean_file_exits_zero(capsys):
    code = main([str(FIXTURES / "nondeterminism_good.py"), "--no-config"])
    assert code == 0
    assert "0 findings" in capsys.readouterr().out


def test_findings_exit_one_with_location_lines(staged_tree, capsys):
    code = main([str(staged_tree), "--no-config", "--rules", "nondeterminism"])
    out = capsys.readouterr().out
    assert code == 1
    assert "[nondeterminism]" in out
    assert "clocks.py:" in out


def test_json_report_shape(staged_tree, capsys):
    code = main([str(staged_tree), "--no-config", "--rules", "slots", "--json"])
    assert code == 1
    report = json.loads(capsys.readouterr().out)
    assert report["total"] == 3
    assert report["counts"] == {"slots": 3}
    assert report["rules"] == ["slots"]
    assert all(
        {"rule", "path", "line", "col", "message"} <= set(f) for f in report["findings"]
    )


def test_scopes_keep_rules_off_unrelated_files(staged_tree, capsys):
    # the slots fixture sits under algebra/, outside nondeterminism's scope,
    # and the clocks fixture declares no classes: tuples.py stays silent here
    code = main([str(staged_tree), "--no-config", "--rules", "nondeterminism"])
    out = capsys.readouterr().out
    assert code == 1
    assert "tuples.py" not in out


def test_warn_unused_suppressions_flag(tmp_path, capsys):
    (tmp_path / "sim").mkdir()
    shutil.copy(FIXTURES / "unused_suppression.py", tmp_path / "sim" / "helpers.py")
    # without the flag the stale comment is invisible: the live one
    # silences the only finding and the run is clean
    code = main([str(tmp_path), "--no-config", "--rules", "nondeterminism"])
    assert code == 0
    capsys.readouterr()
    code = main(
        [
            str(tmp_path),
            "--no-config",
            "--rules",
            "nondeterminism",
            "--warn-unused-suppressions",
        ]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "[unused-suppression]" in out
    assert "silenced nothing" in out


def test_unknown_rule_id_is_a_usage_error(capsys):
    code = main([str(FIXTURES / "slots_bad.py"), "--rules", "no-such-rule"])
    assert code == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_is_a_usage_error(capsys):
    code = main([str(FIXTURES / "does_not_exist.py")])
    assert code == 2
    assert "no such path" in capsys.readouterr().err


def test_no_paths_is_a_usage_error(capsys):
    code = main([])
    assert code == 2
    capsys.readouterr()


def test_list_rules(capsys):
    code = main(["--list-rules"])
    out = capsys.readouterr().out
    assert code == 0
    for rule_id in ("nondeterminism", "runtime-assert", "tracer-mirror"):
        assert rule_id in out
