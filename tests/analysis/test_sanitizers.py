"""The reprosan runtime sanitizers: seeded-bug matrix and overhead contract.

Each sanitizer must demonstrably catch its bug class: we *seed* a
deliberate bug (an unmirrored charge, a run-count-dependent clock, a
corrupted incremental repair, a stale columnar cache) and assert the
sanitizer trips on it.  The flip side is the overhead contract: with
``REPRO_SAN`` unset no shadow structures exist, and with it set the
observable outcome — value, counters, simulated timings — is
bit-identical to an unsanitized run.
"""

from __future__ import annotations

import json

import pytest

from repro.algebra.context import EvalContext, EvalOptions
from repro.analysis.sanitize import ALL_MODES, SanitizerError, modes
from repro.model.tree import Kind
from repro.obs.tracer import Tracer
from repro.sim.clock import SimClock
from repro.storage.nodeid import page_of, slot_of
from repro.storage.record import CoreRecord
from repro.storage.update import update_value
from tests.conftest import small_database

#: forces the scalar navigation path, whose charges flow through the
#: EvalContext.charge_* helpers the charge tests seed bugs into
SCALAR = EvalOptions(batched=False)


@pytest.fixture(autouse=True)
def _sanitizers_off(monkeypatch):
    """Each test opts in explicitly; none inherits the runner's env."""
    monkeypatch.delenv("REPRO_SAN", raising=False)
    monkeypatch.delenv("REPRO_SAN_REPORT", raising=False)


def _find_text_node(db, doc_name="d"):
    doc = db.document(doc_name)
    for page_no in doc.page_nos:
        page = db.store.segment.page(page_no)
        for slot, record in enumerate(page.records):
            if isinstance(record, CoreRecord) and record.kind == Kind.TEXT:
                from repro.storage.nodeid import make_nodeid

                return make_nodeid(page_no, slot)
    raise AssertionError("random document unexpectedly has no text node")


# ------------------------------------------------------------ mode parsing


def test_modes_parsing(monkeypatch):
    assert modes() == frozenset()
    monkeypatch.setenv("REPRO_SAN", "1")
    assert modes() == ALL_MODES
    monkeypatch.setenv("REPRO_SAN", "all")
    assert modes() == ALL_MODES
    monkeypatch.setenv("REPRO_SAN", "charge, mutation")
    assert modes() == frozenset({"charge", "mutation"})
    monkeypatch.setenv("REPRO_SAN", "chrage")
    with pytest.raises(SanitizerError, match="unknown REPRO_SAN mode"):
        modes()


# ------------------------------------------------------- overhead contract


def test_off_allocates_no_shadow_structures():
    db, _ = small_database()
    ctx = db.make_context()
    assert ctx.san is None
    assert ctx.tracer is None
    result = db.execute("count(/root/a)", doc="d")
    assert result.trace_summary is None


def test_sanitized_run_is_bit_identical(monkeypatch):
    db, _ = small_database()
    plain = db.execute("//a/b", doc="d", plan="xscan")
    monkeypatch.setenv("REPRO_SAN", "1")
    db2, _ = small_database()
    sanitized = db2.execute("//a/b", doc="d", plan="xscan")
    assert sanitized.nodes == plain.nodes
    assert sanitized.total_time == plain.total_time
    assert sanitized.cpu_time == plain.cpu_time
    assert sanitized.io_wait == plain.io_wait
    assert sanitized.stats.as_dict() == plain.stats.as_dict()
    # the shadow tracer exists only for the shadow books: it must not
    # surface as a trace summary the unsanitized run would not have had
    assert sanitized.trace_summary is None


def test_user_tracer_still_surfaces_under_sanitizers(monkeypatch):
    monkeypatch.setenv("REPRO_SAN", "1")
    db, _ = small_database()
    db.env.tracer = Tracer()
    result = db.execute("count(/root/a)", doc="d")
    assert result.trace_summary is not None
    assert result.trace_summary.reconcile(result.stats) == {}


# --------------------------------------------------------- charge sanitizer


def test_charge_sanitizer_catches_unmirrored_charge(monkeypatch):
    monkeypatch.setenv("REPRO_SAN", "charge")

    def unmirrored_charge_hop(self):  # seeded bug: no tracer mirror
        cost = self._cost_hop
        self.clock.now += cost
        self.clock.cpu_time += cost
        self.stats.intra_hops += 1

    monkeypatch.setattr(EvalContext, "charge_hop", unmirrored_charge_hop)
    db, _ = small_database()
    with pytest.raises(SanitizerError, match="intra_hops"):
        db.execute("//a/b", doc="d", plan="xscan", options=SCALAR)


def test_charge_sanitizer_catches_double_charge(monkeypatch):
    monkeypatch.setenv("REPRO_SAN", "charge")
    original = EvalContext.charge_hop

    def double_charge_hop(self):  # seeded bug: the PR 3 shape, one
        original(self)  # logical event charged at two layers
        self.stats.intra_hops += 1

    monkeypatch.setattr(EvalContext, "charge_hop", double_charge_hop)
    db, _ = small_database()
    with pytest.raises(SanitizerError, match="intra_hops"):
        db.execute("//a/b", doc="d", plan="xscan", options=SCALAR)


def test_charge_sanitizer_catches_clock_identity_breach(monkeypatch):
    monkeypatch.setenv("REPRO_SAN", "charge")
    original = EvalContext.charge_hop

    def untracked_time(self):  # seeded bug: now moves outside both buckets
        original(self)
        self.clock.now += 1e-6

    monkeypatch.setattr(EvalContext, "charge_hop", untracked_time)
    db, _ = small_database()
    with pytest.raises(SanitizerError, match="clock identity"):
        db.execute("//a/b", doc="d", plan="xscan", options=SCALAR)


# ---------------------------------------------------- determinism sanitizer


def test_determinism_sanitizer_passes_clean_runs(monkeypatch):
    monkeypatch.setenv("REPRO_SAN", "determinism")
    db, _ = small_database()
    result = db.execute("//a/b", doc="d")
    assert result.nodes is not None
    # the re-execution ran on an uncounted shadow runtime
    assert db.env.contexts_built == 1


def test_determinism_sanitizer_catches_run_dependence(monkeypatch):
    db, _ = small_database()
    built = {"n": 0}
    original = SimClock.__init__

    def skewed_init(self):  # seeded bug: every second runtime starts late
        original(self)
        built["n"] += 1
        if built["n"] % 2 == 0:
            self.now = 1e-9

    monkeypatch.setattr(SimClock, "__init__", skewed_init)
    monkeypatch.setenv("REPRO_SAN", "determinism")
    with pytest.raises(SanitizerError, match="clock differs|stats\\."):
        db.execute("//a/b", doc="d")


def test_determinism_trace_diff_is_tick_for_tick():
    from repro.analysis.sanitize.determinism import _diff_events

    first, second = Tracer(), Tracer()
    first.event(0.5, "io", "read", page=3)
    second.event(0.5, "io", "read", page=3)
    _diff_events(first, 0, second)  # identical streams: silent
    first.event(0.7, "io", "read", page=4)
    second.event(0.7, "io", "read", page=5)
    with pytest.raises(SanitizerError, match="trace event 1"):
        _diff_events(first, 0, second)
    second.event(0.8, "io", "read", page=6)
    with pytest.raises(SanitizerError, match="differ in length"):
        _diff_events(first, 0, second)


# ------------------------------------------------------- mutation sanitizer


def test_mutation_sanitizer_catches_stale_synopsis_repair(monkeypatch, tmp_path):
    import repro.storage.wal as walmod

    db, _ = small_database()
    db.attach_wal(str(tmp_path / "wal.log"))
    doc = db.document("d")
    assert doc.synopsis is not None

    def stale_repair(store, document, base, touched):  # seeded bug: the
        document.synopsis = base  # repair "forgets" the touched pages
        return base

    monkeypatch.setattr(walmod, "repair_synopsis", stale_repair)
    monkeypatch.setenv("REPRO_SAN", "mutation")
    with pytest.raises(SanitizerError, match="synopsis"):
        db.wal.insert("d", doc.root, 0, "zzz")


def test_mutation_sanitizer_passes_real_repair(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_SAN", "mutation")
    db, _ = small_database()
    db.attach_wal(str(tmp_path / "wal.log"))
    doc = db.document("d")
    nid = db.wal.insert("d", doc.root, 0, "zzz")
    assert db.execute("count(//zzz)", doc="d").value == 1.0
    assert db.wal.delete("d", nid) == 1


def test_mutation_sanitizer_catches_stale_colview(monkeypatch):
    db, _ = small_database()
    nid = _find_text_node(db)
    page = db.store.segment.page(page_of(nid))
    view = page.colview()  # build and cache the columnar mirror
    view.tags[slot_of(nid)] += 1  # seeded bug: a cache gone stale
    monkeypatch.setenv("REPRO_SAN", "mutation")
    with pytest.raises(SanitizerError, match="column view"):
        update_value(db.store, nid, "x")


# ------------------------------------------------------------ the artifact


def test_failures_land_in_the_report_artifact(monkeypatch, tmp_path):
    report = tmp_path / "reprosan.jsonl"
    monkeypatch.setenv("REPRO_SAN", "charge")
    monkeypatch.setenv("REPRO_SAN_REPORT", str(report))

    def unmirrored_charge_hop(self):
        cost = self._cost_hop
        self.clock.now += cost
        self.clock.cpu_time += cost
        self.stats.intra_hops += 1

    monkeypatch.setattr(EvalContext, "charge_hop", unmirrored_charge_hop)
    db, _ = small_database()
    with pytest.raises(SanitizerError):
        db.execute("//a/b", doc="d", plan="xscan", options=SCALAR)
    lines = report.read_text(encoding="utf-8").splitlines()
    assert lines
    record = json.loads(lines[0])
    assert record["sanitizer"] == "charge"
    assert "intra_hops" in record["message"]
