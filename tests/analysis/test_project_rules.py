"""The interprocedural rules: fixtures, scope pruning, suppressions.

Each project rule gets the same treatment as the per-file rules — it
fires on its bad fixture and stays quiet on the good one — plus the
properties unique to project rules: findings anchored in a file outside
the rule's scope are pruned, and line suppressions at the anchor silence
them, exactly as for per-file findings.
"""

from pathlib import Path

from repro.analysis import ReplintConfig, lint_paths
from repro.analysis.rules import rules_by_id

FIXTURES = Path(__file__).parent / "fixtures"


def run_rule(rule_id: str, fixture: str, config: ReplintConfig | None = None):
    rule = rules_by_id()[rule_id]()
    cfg = config if config is not None else ReplintConfig.everywhere()
    return lint_paths([FIXTURES / fixture], config=cfg, rules=[rule])


# ---------------------------------------------------------- charge-accounting


def test_charge_accounting_fires_on_bad_fixture():
    findings = run_rule("charge-accounting", "charge_accounting_bad.py")
    messages = [f.message for f in findings]
    assert len(findings) == 3
    assert any("charge exactly once" in m for m in messages)
    assert any("paired accounting is incomplete" in m for m in messages)
    assert any("never free" in m for m in messages)
    # the double-charge diagnostic names the callee chain
    assert any("layered_read -> " in m for m in messages)


def test_charge_accounting_passes_good_fixture():
    # delegation charges once; CPU-work counters are exempt from the
    # charge-once check even when charged at two layers
    assert run_rule("charge-accounting", "charge_accounting_good.py") == []


def test_charge_accounting_entry_point_completeness():
    # entrytree/sim/iosys.py defines AsyncIOSystem.request without its
    # contracted pages_requested charge; read_sync is complete
    findings = run_rule(
        "charge-accounting", "entrytree", config=ReplintConfig()
    )
    assert len(findings) == 1
    assert "missed charge" in findings[0].message
    assert "pages_requested" in findings[0].message
    assert findings[0].path.endswith("iosys.py")


# ------------------------------------------------------------- gate-coherence


def test_gate_coherence_fires_on_bad_fixture():
    findings = run_rule("gate-coherence", "gate_coherence_bad.py")
    assert len(findings) == 2
    assert all("possibly-None" in f.message for f in findings)
    keys = {f.message.split("'")[1] for f in findings}
    assert keys == {"self.tracer", "tracer"}


def test_gate_coherence_passes_good_fixture():
    # guarded call sites, optional-parameter helpers, guarded locals
    assert run_rule("gate-coherence", "gate_coherence_good.py") == []


# ---------------------------------------------------------- determinism-taint


def test_determinism_taint_fires_on_bad_fixture():
    findings = run_rule("determinism-taint", "determinism_taint_bad.py")
    messages = [f.message for f in findings]
    assert len(findings) == 3
    assert sum("hash order" in m for m in messages) == 2
    assert sum("id() values vary" in m for m in messages) == 1


def test_determinism_taint_passes_good_fixture():
    assert run_rule("determinism-taint", "determinism_taint_good.py") == []


# -------------------------------------------------------------- summary-drift


def test_summary_drift_fires_on_bad_fixture():
    findings = run_rule("summary-drift", "summary_drift_bad.py")
    messages = [f.message for f in findings]
    assert len(findings) == 2
    assert any("names no Stats field" in m for m in messages)
    assert any("mirrored nowhere" in m for m in messages)


def test_summary_drift_passes_good_fixture():
    assert run_rule("summary-drift", "summary_drift_good.py") == []


def test_summary_drift_reports_dead_fields():
    # drifttree stages a miniature sim/stats.py whose node_tests counter
    # nothing in the tree charges
    findings = run_rule("summary-drift", "drifttree", config=ReplintConfig())
    assert len(findings) == 1
    assert "node_tests" in findings[0].message
    assert "never charged" in findings[0].message
    assert findings[0].path.endswith("stats.py")


# ------------------------------------------------- scope pruning, suppressions


def test_project_findings_prune_by_anchor_file_scope():
    """The scope-pruning regression: identical bug, different directory.

    scopetree stages byte-identical double-charge code under storage/
    (inside charge-accounting's default scope) and xpath/ (outside it).
    The project rule sees both files in one index; only the finding
    anchored in storage/ may survive.
    """
    rule = rules_by_id()["charge-accounting"]()
    findings = lint_paths(
        [FIXTURES / "scopetree"], config=ReplintConfig(), rules=[rule]
    )
    assert findings, "the staged storage/ bug must fire"
    assert all("storage" in f.path for f in findings)
    assert not any("xpath" in f.path for f in findings)
    # not vacuous: the same xpath file fires under an everywhere config
    unscoped = lint_paths(
        [FIXTURES / "scopetree" / "xpath" / "pagecache.py"],
        config=ReplintConfig.everywhere(),
        rules=[rule],
    )
    assert unscoped


def test_project_findings_honour_line_suppressions():
    # suppressed_cache.py carries the same bug as pagecache.py with a
    # `# replint: disable=charge-accounting` at the anchor line
    rule = rules_by_id()["charge-accounting"]()
    findings = lint_paths(
        [FIXTURES / "scopetree"], config=ReplintConfig(), rules=[rule]
    )
    assert not any("suppressed_cache" in f.path for f in findings)
    assert any("pagecache" in f.path for f in findings)
