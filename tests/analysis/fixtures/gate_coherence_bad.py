"""Bad: possibly-None feature slots passed into helpers that require them."""


class Emitter:
    __slots__ = ("tracer",)

    def __init__(self, tracer=None):
        self.tracer = tracer

    def _emit(self, tracer: Tracer) -> None:  # noqa: F821 - lint fixture
        # locally fine: the parameter is declared non-optional
        tracer.count("pages_read", 1)

    def run(self):
        # the slot may hold None; the helper dereferences it unguarded
        self._emit(self.tracer)

    def flush(self):
        tracer = self.tracer
        # the taint survives the local rebinding
        self._emit(tracer)
