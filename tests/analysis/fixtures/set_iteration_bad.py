"""Fixture: hash-order iteration over dedup sets."""


class Scheduler:
    def __init__(self):
        self._visited = set()

    def drain(self):
        return [page for page in self._visited]

    def order(self):
        for page in self._visited:
            yield page

    def snapshot(self):
        return list(self._visited)

    def merged(self, other):
        for page in self._visited | other:
            yield page
