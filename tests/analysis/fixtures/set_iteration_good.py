"""Fixture: membership-only dedup sets, iteration always via sorted()."""


class Scheduler:
    def __init__(self):
        self._visited = set()

    def seen(self, page):
        return page in self._visited

    def note(self, page):
        self._visited.add(page)

    def drain(self):
        return [page for page in sorted(self._visited)]

    def report(self):
        for page in sorted(self._visited):
            yield page
