"""Fixture: deterministic counterparts that must lint clean."""

import random


class Key:
    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        return isinstance(other, Key) and hash(self) == hash(other)

    def __hash__(self):
        return hash(self.value)


def seeded_rng(seed, scale):
    # explicit integer mixing instead of hash()
    return random.Random((seed << 16) ^ round(scale * 1000))


def pick(rng, items):
    return items[rng.randrange(len(items))]
