"""Bad: hash order leaks through a helper's set return; id() in the core."""


def dirty_pages():
    return {3, 1, 2}


def flush_all(out):
    for page in dirty_pages():  # iterates the unordered return directly
        out.append(page)


def snapshot():
    pages = dirty_pages()
    return list(pages)  # the taint survives the local rebinding


def key_for(obj):
    return id(obj)  # interpreter-run-dependent key
