"""Entry-point fixture: request() forgot its pages_requested charge."""


class AsyncIOSystem:
    def read_sync(self, page_no):
        # contracted counters all present: no finding
        self.stats.sync_requests += 1
        self.clock.work(0.0001)

    def request(self, page_no):
        # missed charge: the contract also requires pages_requested
        self.stats.async_requests += 1
        self.clock.work(0.0001)
