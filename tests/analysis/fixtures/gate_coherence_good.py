"""Good: guarded call sites, or helpers that accept the None themselves."""


class Emitter:
    __slots__ = ("tracer",)

    def __init__(self, tracer=None):
        self.tracer = tracer

    def _emit(self, tracer: Tracer) -> None:  # noqa: F821 - lint fixture
        tracer.count("pages_read", 1)

    def _emit_optional(self, tracer: Tracer | None) -> None:  # noqa: F821
        if tracer is not None:
            tracer.count("pages_read", 1)

    def run(self):
        # the call sits inside the guard, so the requirement is met
        if self.tracer is not None:
            self._emit(self.tracer)

    def flush(self):
        # the helper declares the parameter optional and guards inside
        self._emit_optional(self.tracer)

    def drain(self):
        tracer = self.tracer
        if tracer is not None:
            self._emit(tracer)
