"""Fixture: hot-module classes missing __slots__, and a shadowed slot."""

from dataclasses import dataclass


@dataclass
class Point:
    x: int
    y: int


class Frame:
    def __init__(self, page):
        self.page = page


class Shadowed:
    __slots__ = ("value",)
    value = 0
