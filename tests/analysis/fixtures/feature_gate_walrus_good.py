"""Good: walrus and while-condition guards prove their targets non-None."""


class WalrusGuards:
    __slots__ = ("tracer", "synopsis")

    def __init__(self, tracer=None, synopsis=None):
        self.tracer = tracer
        self.synopsis = synopsis

    def emit(self):
        # the walrus proves both the bound local and the source slot
        if (tracer := self.tracer) is not None:
            tracer.count("pages_read", 1)
            self.tracer.count("pages_read", 1)

    def emit_truthy(self):
        # truthiness of the walrus implies non-None just the same
        if (tracer := self.tracer):
            tracer.count("pages_read", 1)

    def drain(self):
        # the while condition guards the loop body on every iteration
        while (tracer := self.tracer) is not None:
            tracer.count("pages_read", 1)
            self.tracer = tracer.successor()
