"""Fixture: asserts used for data validation in a runtime path."""


def read_record(records, slot):
    record = records[slot]
    assert record is not None
    return record


class Cursor:
    def advance(self):
        assert self.position >= 0
        self.position += 1
