"""Fixture: violations silenced by line and file-wide suppressions."""
# replint: disable-file=slots

import time


class Frame:
    def __init__(self, page):
        self.page = page


def stamp():
    return time.time()  # replint: disable=nondeterminism


def read_record(records, slot):
    record = records[slot]
    assert record is not None  # replint: disable=runtime-assert
    return record
