"""Good: every unordered return is sorted before its order can matter."""


def dirty_pages():
    return {3, 1, 2}


def flush_all(out):
    for page in sorted(dirty_pages()):
        out.append(page)


def snapshot():
    pages = dirty_pages()
    return sorted(pages)


def ordered_pages():
    # returning a list is not a taint source
    return [1, 2, 3]


def drain(out):
    for page in ordered_pages():
        out.append(page)
