"""Fixture: every blessed guard shape, plus a provably non-optional local."""


def build_synopsis():
    return object()


class Device:
    def submit(self, page):
        if self.tracer is not None:
            self.tracer.count("io_requests")

    def prune(self, page):
        # and-chain: left operand proves the right one safe
        return self.synopsis is not None and self.synopsis.can_skip(page)

    def verdict(self, page):
        faults = self.faults
        if faults is None:
            return None
        # early bail above guards the remainder of the block
        return faults.service(page)

    def maybe(self, tracer=None):
        return tracer.enabled if tracer is not None else False


def rebuild(store):
    # bound from a constructor: provably non-optional, no guard needed
    synopsis = build_synopsis()
    return synopsis.__class__
