"""Bad: double charge across layers, unpaired miss, free logical read."""


def backing_read(stats, clock, tracer):
    stats.pages_requested += 1
    clock.work(0.001)
    if tracer is not None:
        tracer.count("pages_requested", 1)


def layered_read(stats, clock, tracer):
    # the PR 3 bug shape: this layer charges the request AND delegates
    # to backing_read, which charges it again
    stats.pages_requested += 1
    clock.work(0.001)
    if tracer is not None:
        tracer.count("pages_requested", 1)
    backing_read(stats, clock, tracer)


def record_miss(stats, tracer):
    # a miss that never requests the page: the pairing is incomplete
    stats.buffer_misses += 1
    if tracer is not None:
        tracer.count("buffer_misses", 1)


def free_read(stats, tracer):
    # a logical read with no clock movement anywhere on the path
    stats.pages_requested += 1
    if tracer is not None:
        tracer.count("pages_requested", 1)
