"""Fixture: slotted classes and the shape-exempt categories."""

import enum
from dataclasses import dataclass
from typing import Protocol


@dataclass(slots=True)
class Point:
    x: int
    y: int


class Frame:
    __slots__ = ("page", "pins")

    def __init__(self, page):
        self.page = page
        self.pins = 0


class Colour(enum.Enum):
    RED = 1


class BrokenError(Exception):
    pass


class Readable(Protocol):
    def read(self) -> bytes: ...
