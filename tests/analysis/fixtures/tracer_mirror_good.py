"""Fixture: the blessed mirror shape, plus the literal-zero exemption."""


def service(self, page, distance):
    self.stats.pages_read += 1
    if self.tracer is not None:
        self.tracer.count("pages_read")
    self.stats.seek_distance += distance
    if self.tracer is not None:
        self.tracer.count("seek_distance", distance)


def noop(self):
    # += 0 cannot move a counter; no mirror required
    self.stats.fallbacks += 0
