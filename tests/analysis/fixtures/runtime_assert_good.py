"""Fixture: typed raises plus the allowlisted debug-only shapes."""


def read_record(records, slot):
    record = records[slot]
    if record is None:
        raise ValueError(f"tombstone at slot {slot}")
    return record


def check(records):
    # invariant walk named on the exempt allowlist
    for record in records:
        assert record is not None


def _debug_dump(records):
    assert all(record is not None for record in records)
    return list(records)
