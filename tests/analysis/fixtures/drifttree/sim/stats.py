"""Drift fixture: a miniature Stats with one counter nothing charges."""


class Stats:
    merges: int = 0
    node_tests: int = 0
