"""Drift fixture: charges (and mirrors) merges; node_tests is left dead."""


def merge_step(stats, tracer):
    stats.merges += 1
    if tracer is not None:
        tracer.count("merges", 1)
