"""Bad: a typo'd tracer mirror and a counter charged but never mirrored."""


def charge_phantom(stats, tracer):
    # "pages_requsted" names no Stats field: reconcile never checks it
    if tracer is not None:
        tracer.count("pages_requsted", 1)


def charge_orphan(stats):
    # charged here, mirrored nowhere in the linted tree
    stats.merges += 1
