"""Scope fixture: the same bug, silenced by a line suppression."""


def backing_read(stats, clock, tracer):
    stats.pages_requested += 1
    clock.work(0.001)
    if tracer is not None:
        tracer.count("pages_requested", 1)


def layered_read(stats, clock, tracer):
    stats.pages_requested += 1  # replint: disable=charge-accounting
    clock.work(0.001)
    if tracer is not None:
        tracer.count("pages_requested", 1)
    backing_read(stats, clock, tracer)
