"""Scope fixture (xpath/): byte-identical bug, outside the rule's scope."""


def backing_read(stats, clock, tracer):
    stats.pages_requested += 1
    clock.work(0.001)
    if tracer is not None:
        tracer.count("pages_requested", 1)


def layered_read(stats, clock, tracer):
    stats.pages_requested += 1
    clock.work(0.001)
    if tracer is not None:
        tracer.count("pages_requested", 1)
    backing_read(stats, clock, tracer)
