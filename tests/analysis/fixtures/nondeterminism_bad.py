"""Fixture: every statement here violates the nondeterminism rule."""

import os
import random
import time
from time import perf_counter


def stamp():
    return time.time()


def tick():
    return perf_counter()


def entropy():
    return os.urandom(8)


def pick(items):
    return random.choice(items)


def fresh_rng():
    return random.Random()


def seed_of(scale):
    return hash(str(scale))
