"""Fixture: Stats increments whose tracer mirrors are missing or wrong."""


def missing_mirror(self, page):
    self.stats.pages_read += 1


def unguarded_mirror(self):
    self.stats.seeks += 1
    self.tracer.count("seeks")


def mismatched_amount(self, distance):
    self.stats.seek_distance += distance
    if self.tracer is not None:
        self.tracer.count("seek_distance", 1)
