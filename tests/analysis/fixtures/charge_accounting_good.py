"""Good: one owning charge per physical event; CPU counters are exempt."""


def backing_read(stats, clock, tracer):
    stats.pages_requested += 1
    clock.work(0.001)
    if tracer is not None:
        tracer.count("pages_requested", 1)


def layered_read(stats, clock, tracer):
    # the upper layer only delegates: exactly one charge per logical read
    backing_read(stats, clock, tracer)


def record_miss(stats, clock, tracer):
    # the miss is paired with a reachable pages_requested charge
    stats.buffer_misses += 1
    if tracer is not None:
        tracer.count("buffer_misses", 1)
    backing_read(stats, clock, tracer)


def count_tests(stats, tracer):
    stats.node_tests += 1
    if tracer is not None:
        tracer.count("node_tests", 1)


def charge_tests(stats, tracer):
    # CPU-work counters charge per occurrence at many layers by design;
    # they are policed by tracer-mirror and the runtime charge sanitizer
    stats.node_tests += 1
    if tracer is not None:
        tracer.count("node_tests", 1)
    count_tests(stats, tracer)
