"""Fixture: optional-subsystem uses with no `is not None` guard."""


class Device:
    def submit(self, page):
        self.tracer.count("io_requests")

    def prune(self, page):
        return self.synopsis.can_skip(page)


def poll(faults):
    return faults.service(0)
