"""Good: every charge has a mirror and every mirror names a real field."""


def charge_merge(stats, tracer):
    stats.merges += 1
    if tracer is not None:
        tracer.count("merges", 1)


def charge_tests(stats, tracer):
    stats.node_tests += 1
    if tracer is not None:
        tracer.count("node_tests", 1)
