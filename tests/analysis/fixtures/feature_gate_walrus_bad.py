"""Bad: a walrus guard proves only its own target, not sibling slots."""


class WalrusGuards:
    __slots__ = ("tracer", "synopsis")

    def __init__(self, tracer=None, synopsis=None):
        self.tracer = tracer
        self.synopsis = synopsis

    def emit(self):
        if (t := self.tracer) is not None:
            # the guard proved self.tracer; self.synopsis is still optional
            self.synopsis.rows()

    def drain(self):
        while (tracer := self.tracer) is not None:
            tracer.count("pages_read", 1)
            self.tracer = tracer.successor()
        # outside the loop the condition is known false, not non-None
        tracer.count("pages_read", 1)
