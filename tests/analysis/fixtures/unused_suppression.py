"""Fixture: one live suppression, one stale, one for a rule not run."""

import time


def wall_clock():
    return time.time()  # replint: disable=nondeterminism


def pure():
    return 42  # replint: disable=nondeterminism


def other():
    return None  # replint: disable=slots
