"""The replint framework: suppressions, scoping, finding formatting."""

import ast
from pathlib import Path

from repro.analysis import ReplintConfig, lint_paths, lint_source
from repro.analysis.core import Finding, SourceFile, scope_relpath
from repro.analysis.rules import all_rules, rules_by_id

FIXTURES = Path(__file__).parent / "fixtures"


def test_suppression_comments_silence_findings():
    findings = lint_paths(
        [FIXTURES / "suppressed.py"], config=ReplintConfig.everywhere()
    )
    assert findings == []


def test_same_code_without_suppressions_fires():
    text = (FIXTURES / "suppressed.py").read_text(encoding="utf-8")
    stripped = "\n".join(
        line.split("# replint:")[0].rstrip() for line in text.splitlines()
    )
    src = SourceFile(
        FIXTURES / "suppressed.py", "suppressed.py", stripped, ast.parse(stripped)
    )
    findings = lint_source(src, all_rules(), ReplintConfig.everywhere())
    assert {f.rule for f in findings} == {"slots", "nondeterminism", "runtime-assert"}


def test_unused_suppressions_are_reported_on_request():
    rule = rules_by_id()["nondeterminism"]()
    findings = lint_paths(
        [FIXTURES / "unused_suppression.py"],
        config=ReplintConfig.everywhere(),
        rules=[rule],
        warn_unused_suppressions=True,
    )
    # the live suppression (wall_clock) silences its finding and is not
    # reported; the stale one (pure) is; the slots one is skipped because
    # the slots rule did not run, so there is no verdict on it
    assert [f.rule for f in findings] == ["unused-suppression"]
    assert "disable=nondeterminism" in findings[0].message
    assert findings[0].line == 11


def test_unused_suppressions_stay_quiet_by_default():
    rule = rules_by_id()["nondeterminism"]()
    findings = lint_paths(
        [FIXTURES / "unused_suppression.py"],
        config=ReplintConfig.everywhere(),
        rules=[rule],
    )
    assert findings == []


def test_default_scopes_keep_rules_off_unrelated_modules():
    config = ReplintConfig()
    assert config.in_scope("runtime-assert", "storage/persist.py")
    assert not config.in_scope("runtime-assert", "xpath/parser.py")
    assert config.in_scope("nondeterminism", "sim/disk.py")
    assert not config.in_scope("nondeterminism", "obs/tracer.py")


def test_scope_relpath_strips_package_prefix():
    assert (
        scope_relpath(Path("src/repro/sim/disk.py"), Path("src")) == "sim/disk.py"
    )
    assert (
        scope_relpath(Path("/a/b/src/repro/storage/nav.py"), Path("/a/b"))
        == "storage/nav.py"
    )


def test_finding_format_and_dict_round_trip():
    finding = Finding("slots", "x.py", 3, 1, "class X must declare __slots__")
    assert finding.format() == "x.py:3:1: [slots] class X must declare __slots__"
    assert finding.as_dict()["rule"] == "slots"


def test_rule_catalogue_is_complete_and_described():
    catalogue = rules_by_id()
    assert set(catalogue) == {
        "nondeterminism",
        "runtime-assert",
        "tracer-mirror",
        "slots",
        "feature-gate",
        "set-iteration",
        "charge-accounting",
        "gate-coherence",
        "determinism-taint",
        "summary-drift",
    }
    for rule_class in catalogue.values():
        assert rule_class.id
        assert rule_class.description
