"""Each replint rule fires on its bad fixture and stays quiet on the good one."""

from pathlib import Path

from repro.analysis import ReplintConfig, lint_paths
from repro.analysis.rules import rules_by_id

FIXTURES = Path(__file__).parent / "fixtures"


def run_rule(rule_id: str, fixture: str):
    rule = rules_by_id()[rule_id]()
    config = ReplintConfig.everywhere()
    return lint_paths([FIXTURES / fixture], config=config, rules=[rule])


# ------------------------------------------------------------ nondeterminism


def test_nondeterminism_fires_on_bad_fixture():
    findings = run_rule("nondeterminism", "nondeterminism_bad.py")
    messages = [f.message for f in findings]
    assert len(findings) == 6
    assert any("time.time()" in m for m in messages)
    assert any("time.perf_counter()" in m for m in messages)
    assert any("os.urandom()" in m for m in messages)
    assert any("global unseeded RNG" in m for m in messages)
    assert any("without a seed" in m for m in messages)
    assert any("PYTHONHASHSEED" in m for m in messages)


def test_nondeterminism_passes_good_fixture():
    assert run_rule("nondeterminism", "nondeterminism_good.py") == []


# ------------------------------------------------------------ runtime-assert


def test_runtime_assert_fires_on_bad_fixture():
    findings = run_rule("runtime-assert", "runtime_assert_bad.py")
    assert len(findings) == 2
    assert all("python -O" in f.message for f in findings)


def test_runtime_assert_passes_good_fixture():
    # asserts inside check()/_debug* functions are allowlisted
    assert run_rule("runtime-assert", "runtime_assert_good.py") == []


# ------------------------------------------------------------- tracer-mirror


def test_tracer_mirror_fires_on_bad_fixture():
    findings = run_rule("tracer-mirror", "tracer_mirror_bad.py")
    messages = [f.message for f in findings]
    assert len(findings) == 3
    assert any("no tracer.count" in m for m in messages)
    assert any("not behind an `is not None` guard" in m for m in messages)
    assert any("amounts must match" in m for m in messages)


def test_tracer_mirror_passes_good_fixture():
    assert run_rule("tracer-mirror", "tracer_mirror_good.py") == []


# --------------------------------------------------------------------- slots


def test_slots_fires_on_bad_fixture():
    findings = run_rule("slots", "slots_bad.py")
    messages = [f.message for f in findings]
    assert len(findings) == 3
    assert any("dataclass Point" in m for m in messages)
    assert any("class Frame" in m for m in messages)
    assert any("shadows a slot" in m for m in messages)


def test_slots_passes_good_fixture():
    # enums, exceptions, and Protocols are exempt by shape
    assert run_rule("slots", "slots_good.py") == []


# -------------------------------------------------------------- feature-gate


def test_feature_gate_fires_on_bad_fixture():
    findings = run_rule("feature-gate", "feature_gate_bad.py")
    keys = {f.message.split("'")[1] for f in findings}
    assert len(findings) == 3
    assert keys == {"self.tracer", "self.synopsis", "faults"}


def test_feature_gate_passes_good_fixture():
    # guard shapes: if-body, and-chain, early bail, conditional expression,
    # plus a local proven non-optional at its binding
    assert run_rule("feature-gate", "feature_gate_good.py") == []


def test_feature_gate_recognises_walrus_and_while_guards():
    # `if (tracer := self.tracer) is not None:` proves both the local and
    # the slot; a while condition guards the loop body each iteration
    assert run_rule("feature-gate", "feature_gate_walrus_good.py") == []


def test_feature_gate_walrus_guards_do_not_overreach():
    findings = run_rule("feature-gate", "feature_gate_walrus_bad.py")
    keys = {f.message.split("'")[1] for f in findings}
    assert len(findings) == 2
    # a walrus on tracer proves nothing about synopsis, and the while
    # guard expires at the loop exit
    assert keys == {"self.synopsis", "tracer"}


# ------------------------------------------------------------- set-iteration


def test_set_iteration_fires_on_bad_fixture():
    findings = run_rule("set-iteration", "set_iteration_bad.py")
    assert len(findings) == 4
    assert all("hash order" in f.message for f in findings)


def test_set_iteration_passes_good_fixture():
    assert run_rule("set-iteration", "set_iteration_good.py") == []
