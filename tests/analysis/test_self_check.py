"""The engine's own source tree lints clean — the repo-wide invariant.

These are the regression guards for the PR-wide sweeps: reintroducing a
runtime assert in the storage layer, dropping a ``__slots__``, losing a
tracer guard, or iterating a dedup set will fail here before CI.
"""

from pathlib import Path

from repro.analysis import lint_paths, load_config
from repro.analysis.__main__ import main
from repro.analysis.rules import rules_by_id

import repro

PACKAGE_ROOT = Path(repro.__file__).resolve().parent


def test_self_check_exits_clean(capsys):
    assert main(["--self-check", "--no-config"]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_package_tree_has_no_findings():
    findings = lint_paths([PACKAGE_ROOT], config=load_config(PACKAGE_ROOT))
    assert [f.format() for f in findings] == []


def test_dedup_sets_stay_membership_only():
    """The audited invariant for XSchedule/XAssembly dedup state.

    ``_visited``/``_sidelined``/``_dead_noted`` and ``_r`` exist for
    membership tests; iterating one would leak hash order into result
    order.  The set-iteration rule proves no such iteration exists.
    """
    rule = rules_by_id()["set-iteration"]()
    findings = lint_paths(
        [
            PACKAGE_ROOT / "algebra" / "xschedule.py",
            PACKAGE_ROOT / "algebra" / "xassembly.py",
        ],
        config=load_config(PACKAGE_ROOT),
        rules=[rule],
    )
    assert findings == []


def test_runtime_paths_carry_no_asserts():
    rule = rules_by_id()["runtime-assert"]()
    findings = lint_paths(
        [PACKAGE_ROOT / "storage", PACKAGE_ROOT / "sim"],
        config=load_config(PACKAGE_ROOT),
        rules=[rule],
    )
    assert findings == []
