"""Tests for the XMark generator."""

import pytest

from repro.model.tags import TagDictionary
from repro.xmark.generator import XMarkProfile, generate_xmark
from repro.xpath.reference import evaluate_query


@pytest.fixture(scope="module")
def tree():
    return generate_xmark(scale=0.05, seed=1)


def test_deterministic_per_seed():
    a = generate_xmark(scale=0.02, seed=9)
    b = generate_xmark(scale=0.02, seed=9)
    assert len(a) == len(b)
    assert list(a.tag) == list(b.tag)
    c = generate_xmark(scale=0.02, seed=10)
    assert list(a.tag) != list(c.tag)


def test_seed_stream_is_stable_across_interpreters():
    """Golden fingerprint for the (scale, seed) -> document mapping.

    The generator mixes its seed with explicit integer arithmetic, so
    the same (scale, seed) pair must produce this exact tag stream under
    any PYTHONHASHSEED.  A change here means every published benchmark
    document silently changed.
    """
    import hashlib

    doc = generate_xmark(scale=0.02, seed=9)
    fingerprint = hashlib.sha256(",".join(map(str, doc.tag)).encode()).hexdigest()
    assert len(doc) == 5303
    assert fingerprint[:16] == "e0f6f1ee9b9210f4"


def test_structure_is_valid(tree):
    tree.validate()


def test_top_level_sections(tree):
    site = evaluate_query(tree, "/site")
    assert len(site) == 1
    for section in ("regions", "categories", "catgraph", "people", "open_auctions", "closed_auctions"):
        assert len(evaluate_query(tree, f"/site/{section}")) == 1, section


def test_entity_counts_scale(tree):
    profile = XMarkProfile()
    items = evaluate_query(tree, "count(/site/regions//item)")
    assert items == profile.scaled(0.05, profile.items)
    persons = evaluate_query(tree, "count(/site/people/person)")
    assert persons == profile.scaled(0.05, profile.persons)
    closed = evaluate_query(tree, "count(/site/closed_auctions/closed_auction)")
    assert closed == profile.scaled(0.05, profile.closed_auctions)


def test_items_distributed_over_all_regions(tree):
    for region in ("africa", "asia", "australia", "europe", "namerica", "samerica"):
        assert evaluate_query(tree, f"count(/site/regions/{region}/item)") >= 1


def test_scale_monotone():
    small = generate_xmark(scale=0.02, seed=1)
    large = generate_xmark(scale=0.08, seed=1)
    assert len(large) > 2 * len(small)


def test_every_item_has_required_children(tree):
    items = evaluate_query(tree, "count(//item)")
    for child in ("location", "quantity", "name", "payment", "description", "shipping", "mailbox"):
        assert evaluate_query(tree, f"count(//item/{child})") == items, child


def test_descriptions_everywhere(tree):
    descriptions = evaluate_query(tree, "count(/site//description)")
    items = evaluate_query(tree, "count(//item)")
    closed = evaluate_query(tree, "count(//closed_auction)")
    opened = evaluate_query(tree, "count(//open_auction)")
    categories = evaluate_query(tree, "count(//category)")
    assert descriptions == items + closed + opened + categories


def test_annotations_in_both_auction_kinds(tree):
    assert evaluate_query(tree, "count(//open_auction/annotation)") == evaluate_query(
        tree, "count(//open_auction)"
    )
    assert evaluate_query(tree, "count(//closed_auction/annotation)") == evaluate_query(
        tree, "count(//closed_auction)"
    )


def test_q15_chain_reachable(tree):
    """The deep parlist/listitem/text/emph/keyword chain must occur, but
    stay highly selective (a small fraction of all keywords)."""
    q15 = (
        "count(/site/closed_auctions/closed_auction/annotation/description"
        "/parlist/listitem/parlist/listitem/text/emph/keyword/text())"
    )
    hits = evaluate_query(tree, q15)
    keywords = evaluate_query(tree, "count(//keyword)")
    assert hits > 0
    assert hits < keywords * 0.05


def test_attributes_present(tree):
    items = evaluate_query(tree, "count(//item)")
    assert evaluate_query(tree, "count(//item/@id)") == items
    assert evaluate_query(tree, "count(//incategory/@category)") >= items


def test_custom_profile_and_downscale():
    profile = XMarkProfile(downscale=100)
    tree = generate_xmark(scale=1.0, seed=0, profile=profile)
    assert evaluate_query(tree, "count(//item)") == round(21750 / 100)


def test_shared_tag_dictionary():
    tags = TagDictionary()
    tree = generate_xmark(scale=0.02, seed=0, tags=tags)
    assert tree.tags is tags
    assert "closed_auction" in tags


def test_invalid_scale_rejected():
    with pytest.raises(ValueError):
        generate_xmark(scale=0.0)
