"""Property: physical navigation equals logical navigation, per axis.

For random documents, random layouts and every supported axis,
``full_axis`` (intra-cluster primitives + border crossing + resume
semantics) must enumerate exactly the nodes the logical tree model
defines for that axis — in document order for the downward axes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, ImportOptions
from repro.axes import Axis
from repro.algebra.fullnav import full_axis, string_value
from repro.model.tree import Kind
from repro.storage.nodeid import make_nodeid, page_of, slot_of
from repro.xpath.reference import _axis_nodes, string_value as logical_string_value

from tests.conftest import make_random_tree

AXES = [
    Axis.SELF,
    Axis.CHILD,
    Axis.DESCENDANT,
    Axis.DESCENDANT_OR_SELF,
    Axis.PARENT,
    Axis.ANCESTOR,
    Axis.ANCESTOR_OR_SELF,
    Axis.FOLLOWING_SIBLING,
    Axis.PRECEDING_SIBLING,
]


@st.composite
def stores(draw):
    seed = draw(st.integers(min_value=0, max_value=2000))
    fragmentation = draw(st.floats(min_value=0.0, max_value=1.0))
    page_size = draw(st.sampled_from([256, 512]))
    db = Database(page_size=page_size, buffer_pages=64)
    tree = make_random_tree(db.tags, seed, n_top=25)
    db.add_tree(
        tree, "d", ImportOptions(page_size=page_size, fragmentation=fragmentation, seed=seed)
    )
    return db, tree


@given(stores(), st.sampled_from(AXES), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_full_axis_matches_logical_axis(store, axis, node_pick):
    db, tree = store
    ir = db.document("d").import_result
    # pick a non-attribute node (axes are defined on the principal tree)
    candidates = [
        n for n in range(len(tree)) if tree.kind_of(n) != Kind.ATTRIBUTE
    ]
    node = candidates[node_pick % len(candidates)]
    expected = [ir.nodeid_of(n) for n in _axis_nodes(tree, node, axis)]

    ctx = db.make_context()
    nid = ir.nodeid_of(node)
    # raw navigation yields attribute records as candidates; the node
    # test filters them in the operators, so filter here the same way
    got = [
        make_nodeid(p, s)
        for p, s in full_axis(ctx, page_of(nid), slot_of(nid), axis)
        if ctx.segment.page(p).record(s).kind != Kind.ATTRIBUTE
    ]
    ctx.release()
    if axis in (Axis.CHILD, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF, Axis.SELF):
        # downward axes must come out in document order
        assert got == expected
    else:
        assert sorted(got) == sorted(expected)


@given(stores(), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_string_value_matches_logical(store, node_pick):
    db, tree = store
    ir = db.document("d").import_result
    node = node_pick % len(tree)
    ctx = db.make_context()
    nid = ir.nodeid_of(node)
    assert string_value(ctx, page_of(nid), slot_of(nid)) == logical_string_value(tree, node)
    ctx.release()
