"""Property: the batched datapath is invisible, bit for bit.

Unlike the synopsis (whose pruning legitimately changes I/O counters),
batch-at-a-time execution is a pure CPU reorganisation of the scalar
kernels: for any random document, physical layout, location path (every
axis), physical plan and fault profile — and for every XMark paper
query — ``batched=True`` must return the same results, the same
``Stats`` tick-for-tick and the same simulated time as
``batched=False``.  A tracer attached to a batched run must still
reconcile counter-for-counter against ``Stats``.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PROFILES, Database, EvalOptions, ImportOptions, Tracer
from repro.xmark import PAPER_QUERIES, generate_xmark
from tests.conftest import make_random_tree

AXES = [
    "child",
    "descendant",
    "descendant-or-self",
    "self",
    "parent",
    "ancestor",
    "ancestor-or-self",
    "following-sibling",
    "preceding-sibling",
]
TESTS = ["a", "b", "c", "nosuchtag", "*", "node()", "text()"]
PLANS = ["simple", "xschedule", "xscan", "xscan-shared"]


@st.composite
def location_paths(draw):
    n_steps = draw(st.integers(min_value=1, max_value=4))
    steps = [
        f"{draw(st.sampled_from(AXES))}::{draw(st.sampled_from(TESTS))}"
        for _ in range(n_steps)
    ]
    return "/" + "/".join(steps)


_STORE_CACHE: dict = {}


def _store(seed: int, fragmentation: float):
    key = (seed, fragmentation)
    if key not in _STORE_CACHE:
        db = Database(page_size=512, buffer_pages=48)
        tree = make_random_tree(db.tags, seed=seed, n_top=25)
        db.add_tree(
            tree,
            "d",
            ImportOptions(page_size=512, fragmentation=fragmentation, seed=seed),
        )
        _STORE_CACHE[key] = db.store
    return _STORE_CACHE[key]


def _xmark_store(fragmentation: float):
    key = ("xmark", fragmentation)
    if key not in _STORE_CACHE:
        db = Database(page_size=2048, buffer_pages=64)
        tree = generate_xmark(scale=0.01, tags=db.tags, seed=0)
        db.add_tree(
            tree,
            "d",
            ImportOptions(page_size=2048, fragmentation=fragmentation, seed=0),
        )
        _STORE_CACHE[key] = db.store
    return _STORE_CACHE[key]


def _outcome(result):
    if result.value is not None:
        return ("value", result.value)
    return ("nodes", tuple(result.nodes))


def _assert_identical(on, off, context):
    assert _outcome(on) == _outcome(off), context
    assert on.stats.as_dict() == off.stats.as_dict(), context
    assert on.total_time == off.total_time, context


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=7),
    fragmentation=st.sampled_from([0.0, 0.7, 1.0]),
    plan=st.sampled_from(PLANS),
    speculative=st.booleans(),
    path=location_paths(),
)
def test_batched_run_is_bit_identical(seed, fragmentation, plan, speculative, path):
    store = _store(seed, fragmentation)
    results = {}
    for batched in (True, False):
        db = Database(page_size=512, buffer_pages=48, store=store)
        options = EvalOptions(speculative=speculative, batched=batched)
        results[batched] = db.execute(path, doc="d", plan=plan, options=options)
    _assert_identical(results[True], results[False], (plan, path))


@settings(max_examples=8, deadline=None)
@given(
    fragmentation=st.sampled_from([0.0, 1.0]),
    plan=st.sampled_from(PLANS),
)
def test_xmark_queries_are_bit_identical(fragmentation, plan):
    """Every paper query shape, both layouts, all four plans."""
    store = _xmark_store(fragmentation)
    for _, _, query in PAPER_QUERIES:
        results = {}
        for batched in (True, False):
            db = Database(page_size=2048, buffer_pages=64, store=store)
            results[batched] = db.execute(
                query, doc="d", plan=plan, options=EvalOptions(batched=batched)
            )
        _assert_identical(results[True], results[False], (plan, query))


@settings(max_examples=25, deadline=None)
@given(
    plan=st.sampled_from(PLANS),
    profile_name=st.sampled_from([n for n in PROFILES if n != "none"]),
    fault_seed=st.integers(min_value=0, max_value=25),
    path=location_paths(),
)
def test_batched_is_bit_identical_under_faults(plan, profile_name, fault_seed, path):
    """Retries, latency spikes and lost requests replay identically:
    the batched kernels issue the same fix/unfix sequence at the same
    simulated instants, so the fault dice roll the same on both sides."""
    store = _store(3, 0.7)
    profile = dataclasses.replace(PROFILES[profile_name], seed=fault_seed)
    results = {}
    for batched in (True, False):
        db = Database(page_size=512, buffer_pages=48, store=store, faults=profile)
        results[batched] = db.execute(
            path, doc="d", plan=plan, options=EvalOptions(batched=batched)
        )
    _assert_identical(results[True], results[False], (plan, profile_name, path))


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=3),
    plan=st.sampled_from(PLANS),
    path=location_paths(),
)
def test_batched_trace_reconciles_and_does_not_perturb(seed, plan, path):
    """The per-batch span events and delta-flushed counter mirrors keep
    the tracer contract: attaching one changes nothing, and the summary
    reconciles counter-for-counter against ``Stats``."""
    store = _store(seed, 1.0)
    vanilla = Database(page_size=512, buffer_pages=48, store=store).execute(
        path, doc="d", plan=plan, options=EvalOptions(batched=True)
    )
    traced = Database(
        page_size=512, buffer_pages=48, store=store, tracer=Tracer()
    ).execute(path, doc="d", plan=plan, options=EvalOptions(batched=True))
    _assert_identical(traced, vanilla, (plan, path))
    assert traced.trace_summary is not None
    mismatches = traced.trace_summary.reconcile(traced.stats)
    assert mismatches == {}, (plan, path, mismatches)
