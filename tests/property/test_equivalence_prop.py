"""Property: all physical plans agree with the logical reference evaluator
on random documents and random location paths (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, EvalOptions, ImportOptions
from repro.axes import Axis
from repro.model.builder import TreeBuilder
from repro.xpath.parser import parse_path
from repro.xpath.reference import evaluate_path

AXES = [
    "child",
    "descendant",
    "descendant-or-self",
    "self",
    "parent",
    "ancestor",
    "ancestor-or-self",
    "following-sibling",
    "preceding-sibling",
]
TESTS = ["a", "b", "c", "*", "node()", "text()"]


@st.composite
def location_paths(draw):
    n_steps = draw(st.integers(min_value=1, max_value=4))
    steps = []
    for _ in range(n_steps):
        axis = draw(st.sampled_from(AXES))
        test = draw(st.sampled_from(TESTS))
        steps.append(f"{axis}::{test}")
    return "/" + "/".join(steps)


@st.composite
def databases(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    import random

    rng = random.Random(seed)
    db = Database(page_size=512, buffer_pages=48)
    builder = TreeBuilder(db.tags)
    builder.start_element("root")

    def gen(depth):
        builder.start_element(rng.choice("abc"))
        for _ in range(rng.randrange(4) if depth < 5 else 0):
            if rng.random() < 0.25:
                builder.text("t" * rng.randrange(1, 10))
            else:
                gen(depth + 1)
        builder.end_element()

    for _ in range(rng.randrange(10, 40)):
        gen(0)
    builder.end_element()
    tree = builder.finish()
    fragmentation = draw(st.floats(min_value=0.0, max_value=1.0))
    db.add_tree(
        tree,
        "d",
        ImportOptions(page_size=512, fragmentation=fragmentation, seed=seed),
    )
    return db, tree


@given(databases(), location_paths(), st.booleans())
@settings(max_examples=50, deadline=None)
def test_plans_match_reference(db_tree, query, speculative):
    db, tree = db_tree
    expected = [
        db.document("d").import_result.nodeid_of(n)
        for n in evaluate_path(tree, parse_path(query))
    ]
    options = EvalOptions(speculative=speculative, k_min_queue=4)
    for plan in ("simple", "xschedule", "xscan"):
        result = db.execute(query, doc="d", plan=plan, options=options)
        assert result.nodes == expected, (plan, query)


@given(databases(), location_paths(), st.integers(min_value=1, max_value=8))
@settings(max_examples=30, deadline=None)
def test_fallback_matches_reference(db_tree, query, memory_limit):
    db, tree = db_tree
    expected = sorted(
        db.document("d").import_result.nodeid_of(n)
        for n in evaluate_path(tree, parse_path(query))
    )
    options = EvalOptions(speculative=True, memory_limit=memory_limit, k_min_queue=2)
    for plan in ("xschedule", "xscan"):
        result = db.execute(query, doc="d", plan=plan, options=options)
        assert sorted(result.nodes) == expected, (plan, query)
