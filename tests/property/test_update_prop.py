"""Property: arbitrary update storms keep the store sound and all
physical plans in agreement with each other."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.errors import StorageError
from repro.model.tree import Kind
from repro.storage.store import check_document, export_tree, recollect_statistics
from repro.storage.update import delete_subtree, insert_node, update_value


@st.composite
def storms(draw):
    seed = draw(st.integers(min_value=0, max_value=5000))
    n_steps = draw(st.integers(min_value=5, max_value=50))
    page_size = draw(st.sampled_from([256, 512, 1024]))
    return seed, n_steps, page_size


@given(storms())
@settings(max_examples=25, deadline=None)
def test_update_storm_soundness(storm):
    seed, n_steps, page_size = storm
    rng = random.Random(seed)
    db = Database(page_size=page_size, buffer_pages=64)
    db.load_xml("<root><a>seed text</a><b/><c><d/></c></root>", "d")
    doc = db.document("d")

    for _ in range(n_steps):
        action = rng.random()
        elements = db.execute("//*", doc="d", plan="simple").nodes
        if action < 0.55 or len(elements) < 3:
            parent = rng.choice(elements + [doc.root])
            if db.node_info(parent)[0] == "TEXT":
                continue
            count = db.execute("count(//*)", doc="d").value
            position = rng.randrange(0, 3)
            try:
                insert_node(
                    db.store,
                    doc,
                    parent,
                    min(position, 0),
                    rng.choice("wxyz"),
                    value=None if rng.random() < 0.6 else "v" * rng.randrange(1, 30),
                )
            except StorageError:
                raise
        elif action < 0.7:
            texts = db.execute("//text()", doc="d", plan="simple").nodes
            if texts:
                try:
                    update_value(db.store, rng.choice(texts), "u" * rng.randrange(1, 8))
                except StorageError:
                    # in-place growth on a full page is documented to
                    # raise; the storm cares about soundness, not fit
                    pass
        else:
            victim = rng.choice(elements)
            delete_subtree(db.store, doc, victim)

    check_document(db.store, doc)
    exported = export_tree(db.store, doc)
    exported.validate()
    statistics = recollect_statistics(db.store, doc)
    assert statistics.n_nodes == doc.n_nodes

    for query in ("count(//*)", "count(//w)", "//x", "count(//text())"):
        results = [
            db.execute(query, doc="d", plan=plan)
            for plan in ("simple", "xschedule", "xscan")
        ]
        outcomes = {
            r.value if r.value is not None else tuple(r.nodes) for r in results
        }
        assert len(outcomes) == 1, query

    # exports agree with each other after the storm
    scan_text, _ = db.export_xml(doc="d", method="scan")
    navigate_text, _ = db.export_xml(doc="d", method="navigate")
    assert scan_text == navigate_text
