"""Property: a session's aggregate Stats equal the merged per-run Stats.

Sessions attribute per-run counters by snapshot/diff on the shared
bundle (warm runs) or per-context bundles (cold runs); either way the
sum of the parts must be the whole, for any workload and either runtime
policy.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.stats import Stats

from tests.conftest import small_database

QUERIES = ["//a", "//b", "/root/a/b", "//c/d", "count(//a)", "count(//b)+count(//c)"]
PLANS = ["auto", "simple", "xschedule", "xscan"]


@st.composite
def workloads(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    return [
        (draw(st.sampled_from(QUERIES)), draw(st.sampled_from(PLANS)))
        for _ in range(n)
    ]


@given(workload=workloads(), warm=st.booleans(), seed=st.integers(0, 20))
@settings(max_examples=25, deadline=None)
def test_session_stats_are_sum_of_per_run_stats(workload, warm, seed):
    db, _ = small_database(seed=seed)
    session = db.session(warm=warm)
    merged = Stats()
    total = cpu = 0.0
    for query, plan in workload:
        result = session.execute(query, doc="d", plan=plan)
        merged.merge(result.stats)
        total += result.total_time
        cpu += result.cpu_time
    assert session.stats.as_dict() == merged.as_dict()
    assert abs(session.total_time - total) < 1e-9
    assert abs(session.cpu_time - cpu) < 1e-9
