"""Property: the chooser never crashes and never goes non-finite.

``estimate_path`` and ``choose_io_operator`` run at planning time over
whatever statistics the store happens to carry — including degenerate
ones (zero tag counts left by updates, empty pair tables, tags the
dictionary has never seen).  For *any* generated
:class:`~repro.storage.store.DocumentStatistics` and *any* step
sequence, the estimate must stay finite and non-negative, the visited
fraction must stay a fraction, and the chooser must return one of its
two families instead of raising.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, ImportOptions
from repro.axes import Axis
from repro.algebra.steps import UNKNOWN_TAG, CompiledNodeTest, CompiledStep
from repro.model.builder import tree_from_nested
from repro.model.tags import DOCUMENT_TAG
from repro.sim.disk import DiskGeometry
from repro.storage.store import DocumentStatistics
from repro.xpath.estimate import choose_io_operator, estimate_path, predict_io_costs

AXES = list(Axis)

#: a small closed tag universe, DOCUMENT_TAG included
TAGS = st.integers(min_value=DOCUMENT_TAG, max_value=6)


@st.composite
def statistics(draw):
    """Arbitrary — including degenerate — document statistics."""
    tag_counts = draw(
        st.dictionaries(TAGS, st.integers(min_value=0, max_value=500), max_size=8)
    )
    pairs = st.tuples(TAGS, TAGS)
    child_pairs = draw(
        st.dictionaries(pairs, st.integers(min_value=0, max_value=300), max_size=12)
    )
    desc_pairs = draw(
        st.dictionaries(pairs, st.integers(min_value=0, max_value=300), max_size=12)
    )
    n_nodes = draw(st.integers(min_value=0, max_value=2000))
    return DocumentStatistics(
        n_nodes=n_nodes,
        n_elements=max(0, n_nodes - 1),
        tag_counts=tag_counts,
        child_pairs=child_pairs,
        desc_pairs=desc_pairs,
    )


@st.composite
def step_sequences(draw):
    steps = []
    for _ in range(draw(st.integers(min_value=0, max_value=5))):
        axis = draw(st.sampled_from(AXES))
        kind = draw(st.sampled_from(["name", "node", "wildcard"]))
        tag = None
        if kind == "name":
            # None compiles to UNKNOWN_TAG — the never-matching test
            tag = draw(st.one_of(st.none(), TAGS, st.just(UNKNOWN_TAG)))
        steps.append(CompiledStep(axis, CompiledNodeTest.compile(kind, axis, tag)))
    return steps


@given(statistics(), step_sequences())
@settings(max_examples=200, deadline=None)
def test_estimate_path_finite_and_non_negative(stats, steps):
    estimate = estimate_path(stats, steps)
    assert math.isfinite(estimate.result_cardinality)
    assert math.isfinite(estimate.visited_nodes)
    assert estimate.result_cardinality >= 0.0
    assert estimate.visited_nodes >= 0.0
    assert 0.0 <= estimate.visited_fraction <= 1.0


@given(statistics(), step_sequences(), st.integers(min_value=1, max_value=200))
@settings(max_examples=100, deadline=None)
def test_choose_io_operator_never_raises(stats, steps, queue_depth):
    """The chooser must return a family for any statistics a store could
    carry — it runs against a real document whose statistics have been
    replaced wholesale by the generated (possibly degenerate) ones."""
    db = Database(page_size=512, buffer_pages=16)
    tree = tree_from_nested(("a", [("b",), ("c",)]), db.tags)
    db.add_tree(tree, "d", ImportOptions(page_size=512))
    document = db.document("d")
    document.statistics = stats
    for use_synopsis in (False, True):
        choice = choose_io_operator(
            document,
            steps,
            DiskGeometry(page_size=512),
            use_synopsis=use_synopsis,
            queue_depth=queue_depth,
        )
        assert choice in ("xscan", "xschedule")
        prediction = predict_io_costs(
            document,
            steps,
            DiskGeometry(page_size=512),
            use_synopsis=use_synopsis,
            queue_depth=queue_depth,
        )
        assert prediction is not None
        assert math.isfinite(prediction.sequential_cost)
        assert math.isfinite(prediction.random_cost)
        assert prediction.sequential_cost >= 0.0
        assert prediction.random_cost >= 0.0
        assert prediction.choice == choice


def test_chooser_without_statistics_defaults_to_schedule():
    db = Database(page_size=512, buffer_pages=16)
    tree = tree_from_nested(("a", [("b",)]), db.tags)
    db.add_tree(tree, "d", ImportOptions(page_size=512))
    document = db.document("d")
    document.statistics = None
    steps = [
        CompiledStep(Axis.CHILD, CompiledNodeTest.compile("node", Axis.CHILD, None))
    ]
    assert choose_io_operator(document, steps, DiskGeometry(page_size=512)) == "xschedule"
    assert predict_io_costs(document, steps, DiskGeometry(page_size=512)) is None
