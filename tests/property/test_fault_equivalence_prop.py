"""Property: degraded, never wrong.

For *any* plan, speculation setting, fault profile, fault seed and
memory limit (including limits that force the XAssembly fallback), a
query's answer equals the fault-free simple-plan answer.  Faults may
change the run's cost and degradation report — never its result.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PROFILES, Database, EvalOptions, ImportOptions
from tests.conftest import make_random_tree

QUERIES = ("//a", "count(//b//c)", "/root/a/b")


def _build_store():
    db = Database(page_size=512, buffer_pages=48)
    tree = make_random_tree(db.tags, seed=11)
    db.add_tree(
        tree, "d", ImportOptions(page_size=512, fragmentation=0.7, seed=11)
    )
    return db.store


_STORE = _build_store()
_BASELINE = {
    query: (result.value, result.nodes)
    for query in QUERIES
    for result in [
        Database(page_size=512, buffer_pages=48, store=_STORE).execute(
            query, doc="d", plan="simple"
        )
    ]
}


@settings(max_examples=30, deadline=None)
@given(
    plan=st.sampled_from(["simple", "xschedule", "xscan"]),
    speculative=st.booleans(),
    profile_name=st.sampled_from([n for n in PROFILES if n != "none"]),
    seed=st.integers(min_value=0, max_value=50),
    memory_limit=st.one_of(st.none(), st.integers(min_value=0, max_value=8)),
    query=st.sampled_from(QUERIES),
)
def test_faulty_run_equals_fault_free_simple(
    plan, speculative, profile_name, seed, memory_limit, query
):
    profile = dataclasses.replace(PROFILES[profile_name], seed=seed)
    options = EvalOptions(speculative=speculative, memory_limit=memory_limit)
    db = Database(
        page_size=512,
        buffer_pages=48,
        store=_STORE,
        eval_options=options,
        faults=profile,
    )
    result = db.execute(query, doc="d", plan=plan)
    assert (result.value, result.nodes) == _BASELINE[query]


@settings(max_examples=15, deadline=None)
@given(
    plan=st.sampled_from(["simple", "xschedule", "xscan"]),
    profile_name=st.sampled_from([n for n in PROFILES if n != "none"]),
    seed=st.integers(min_value=0, max_value=50),
)
def test_faulty_run_is_deterministic(plan, profile_name, seed):
    profile = dataclasses.replace(PROFILES[profile_name], seed=seed)
    runs = []
    for _ in range(2):
        db = Database(page_size=512, buffer_pages=48, store=_STORE, faults=profile)
        result = db.execute("//a", doc="d", plan=plan)
        runs.append(
            (result.value, result.nodes, result.total_time, result.stats.as_dict())
        )
    assert runs[0] == runs[1]
