"""Property: the path summary is invisible except in planning and I/O.

For any random document, physical layout, location path (every axis),
physical plan and fault profile, executing with the path summary on
returns bit-identical results to executing with it off.  When the run
refutes nothing, expands nothing and prunes nothing, the whole ``Stats``
dict — and the simulated clock — is identical tick-for-tick.  Refuted
queries complete without requesting a single page, and traced runs
reconcile counter-for-counter whichever way the toggle points.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PROFILES, Database, EvalOptions, ImportOptions, Tracer
from tests.conftest import make_random_tree

AXES = [
    "child",
    "descendant",
    "descendant-or-self",
    "self",
    "parent",
    "ancestor",
    "ancestor-or-self",
    "following-sibling",
    "preceding-sibling",
]
TESTS = ["a", "b", "c", "nosuchtag", "*", "node()", "text()"]

_SUMMARY_COUNTERS = (
    "paths_refuted",
    "pathsummary_clusters_pruned",
    "pathsummary_entries_pruned",
)


@st.composite
def location_paths(draw):
    n_steps = draw(st.integers(min_value=1, max_value=4))
    steps = [
        f"{draw(st.sampled_from(AXES))}::{draw(st.sampled_from(TESTS))}"
        for _ in range(n_steps)
    ]
    return "/" + "/".join(steps)


_STORE_CACHE: dict = {}


def _store(seed: int, fragmentation: float):
    key = (seed, fragmentation)
    if key not in _STORE_CACHE:
        db = Database(page_size=512, buffer_pages=48)
        tree = make_random_tree(db.tags, seed=seed, n_top=25)
        db.add_tree(
            tree,
            "d",
            ImportOptions(page_size=512, fragmentation=fragmentation, seed=seed),
        )
        _STORE_CACHE[key] = db.store
    return _STORE_CACHE[key]


def _outcome(result):
    if result.value is not None:
        return ("value", result.value)
    return ("nodes", tuple(result.nodes))


def _expanded(db, path, plan):
    """True when the rewrite pass changed the compiled step list."""
    on = db.prepare(path, "d", plan, EvalOptions(pathsummary=True))
    off = db.prepare(path, "d", plan, EvalOptions(pathsummary=False))
    shape = lambda q: [
        [(s.axis, s.test.tag) for s in leaf.steps] for leaf in q.path_plans()
    ]
    return shape(on) != shape(off)


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=7),
    fragmentation=st.sampled_from([0.0, 0.7, 1.0]),
    plan=st.sampled_from(["simple", "xschedule", "xscan", "xscan-shared"]),
    speculative=st.booleans(),
    path=location_paths(),
)
def test_summary_run_equals_plain_run(seed, fragmentation, plan, speculative, path):
    store = _store(seed, fragmentation)
    results = {}
    for pathsummary in (True, False):
        db = Database(page_size=512, buffer_pages=48, store=store)
        options = EvalOptions(speculative=speculative, pathsummary=pathsummary)
        results[pathsummary] = db.execute(path, doc="d", plan=plan, options=options)
    on, off = results[True], results[False]
    assert _outcome(on) == _outcome(off)
    stats_on, stats_off = on.stats.as_dict(), off.stats.as_dict()
    for counter in _SUMMARY_COUNTERS:
        assert stats_off.pop(counter) == 0
    refuted = stats_on.pop("paths_refuted") > 0
    pruned_clusters = stats_on.pop("pathsummary_clusters_pruned")
    pruned_entries = stats_on.pop("pathsummary_entries_pruned")
    if refuted:
        # a refuted query touches nothing: no requests, no clusters, no time
        assert on.stats.pages_requested == 0
        assert on.stats.clusters_visited == 0
        assert on.total_time == 0.0
        return
    db = Database(page_size=512, buffer_pages=48, store=store)
    if pruned_clusters == 0 and pruned_entries == 0 and not _expanded(db, path, plan):
        # the summary decided nothing: the two runs are bit-identical
        assert stats_on == stats_off
        assert on.total_time == off.total_time
    else:
        # refinement may only ever remove work
        assert stats_on["pages_requested"] <= stats_off["pages_requested"]


@settings(max_examples=25, deadline=None)
@given(
    plan=st.sampled_from(["xschedule", "xscan"]),
    profile_name=st.sampled_from([n for n in PROFILES if n != "none"]),
    fault_seed=st.integers(min_value=0, max_value=25),
    path=location_paths(),
)
def test_summary_is_sound_under_faults(plan, profile_name, fault_seed, path):
    """Retries, latency spikes and lost requests never interact badly
    with refutation, expansion or postings pruning: the answer still
    matches the summary-free fault-free run."""
    store = _store(3, 0.7)
    profile = dataclasses.replace(PROFILES[profile_name], seed=fault_seed)
    baseline = Database(page_size=512, buffer_pages=48, store=store).execute(
        path, doc="d", plan=plan, options=EvalOptions(pathsummary=False)
    )
    faulty = Database(
        page_size=512, buffer_pages=48, store=store, faults=profile
    ).execute(path, doc="d", plan=plan)
    assert _outcome(faulty) == _outcome(baseline)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5),
    plan=st.sampled_from(["simple", "xschedule", "xscan"]),
    pathsummary=st.booleans(),
    path=location_paths(),
)
def test_traced_runs_reconcile_either_way(seed, plan, pathsummary, path):
    """Every new counter keeps the tracer-mirror invariant: a traced run
    reconciles exactly, with the summary on or off — including runs that
    refute, expand or prune."""
    store = _store(seed, 1.0)
    tracer = Tracer()
    db = Database(page_size=512, buffer_pages=48, store=store, tracer=tracer)
    result = db.execute(
        path, doc="d", plan=plan, options=EvalOptions(pathsummary=pathsummary)
    )
    assert result.trace_summary is not None
    assert result.trace_summary.reconcile(result.stats) == {}
