"""Property: synopsis pruning is invisible except in the I/O counters.

For any random document, physical layout, location path (every axis),
physical plan and fault profile, executing with the cluster synopsis on
returns bit-identical results to executing with it off.  When the run
prunes nothing, the whole ``Stats`` dict is identical tick-for-tick;
when it does prune, only fewer pages are read — and for XScan every
skipped page is accounted for by the pruned-clusters counter.
"""

import dataclasses
import random

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro import PROFILES, Database, EvalOptions, ImportOptions
from tests.conftest import make_random_tree

AXES = [
    "child",
    "descendant",
    "descendant-or-self",
    "self",
    "parent",
    "ancestor",
    "ancestor-or-self",
    "following-sibling",
    "preceding-sibling",
]
TESTS = ["a", "b", "c", "nosuchtag", "*", "node()", "text()"]

# The path-summary postings filter composes with the synopsis (it only
# runs when the synopsis is on), so an on/off comparison must account
# for its skips alongside the synopsis-attributed ones.
_PRUNE_COUNTERS = (
    "synopsis_clusters_pruned",
    "synopsis_entries_pruned",
    "pathsummary_clusters_pruned",
    "pathsummary_entries_pruned",
)


@st.composite
def location_paths(draw):
    n_steps = draw(st.integers(min_value=1, max_value=4))
    steps = [
        f"{draw(st.sampled_from(AXES))}::{draw(st.sampled_from(TESTS))}"
        for _ in range(n_steps)
    ]
    return "/" + "/".join(steps)


_STORE_CACHE: dict = {}


def _store(seed: int, fragmentation: float):
    key = (seed, fragmentation)
    if key not in _STORE_CACHE:
        db = Database(page_size=512, buffer_pages=48)
        tree = make_random_tree(db.tags, seed=seed, n_top=25)
        db.add_tree(
            tree,
            "d",
            ImportOptions(page_size=512, fragmentation=fragmentation, seed=seed),
        )
        _STORE_CACHE[key] = db.store
    return _STORE_CACHE[key]


def _outcome(result):
    if result.value is not None:
        return ("value", result.value)
    return ("nodes", tuple(result.nodes))


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=7),
    fragmentation=st.sampled_from([0.0, 0.7, 1.0]),
    plan=st.sampled_from(["simple", "xschedule", "xscan"]),
    speculative=st.booleans(),
    path=location_paths(),
)
# pruning one cluster shifts buffer evictions for the rest of the run, so
# physical pages_read may legitimately differ by more than the pruned
# count; this example pins the scan-accounting invariant at the visited-
# clusters level where it is buffer-independent
@example(
    seed=2, fragmentation=1.0, plan="xscan", speculative=False, path="/descendant::b"
)
def test_pruned_run_equals_unpruned_run(seed, fragmentation, plan, speculative, path):
    store = _store(seed, fragmentation)
    results = {}
    for synopsis in (True, False):
        db = Database(page_size=512, buffer_pages=48, store=store)
        options = EvalOptions(speculative=speculative, synopsis=synopsis)
        results[synopsis] = db.execute(path, doc="d", plan=plan, options=options)
    on, off = results[True], results[False]
    assert _outcome(on) == _outcome(off)
    stats_on, stats_off = on.stats.as_dict(), off.stats.as_dict()
    for counter in _PRUNE_COUNTERS:
        assert stats_off.pop(counter) == 0
    pruned = {counter: stats_on.pop(counter) for counter in _PRUNE_COUNTERS}
    pruned_clusters = (
        pruned["synopsis_clusters_pruned"] + pruned["pathsummary_clusters_pruned"]
    )
    if not any(pruned.values()):
        # nothing pruned: the two executions must be bit-identical
        assert stats_on == stats_off
        assert on.total_time == off.total_time
    else:
        # pruning may only ever remove I/O
        assert stats_on["pages_read"] <= stats_off["pages_read"]
    if plan == "xscan" and on.stats.fallbacks == 0:
        # every page is either visited by the scan or provably skipped.
        # The accounting holds on clusters_visited, not pages_read: the
        # extra page the unpruned run fixes can evict a frame the run
        # still needs, so its physical re-read count is not comparable.
        assert (
            stats_on["clusters_visited"] + pruned_clusters
            == stats_off["clusters_visited"]
        )


@settings(max_examples=25, deadline=None)
@given(
    plan=st.sampled_from(["xschedule", "xscan"]),
    profile_name=st.sampled_from([n for n in PROFILES if n != "none"]),
    fault_seed=st.integers(min_value=0, max_value=25),
    path=location_paths(),
)
def test_pruning_is_sound_under_faults(plan, profile_name, fault_seed, path):
    """Retries, latency spikes and lost requests never interact badly
    with pruning: the answer still matches the unpruned fault-free run."""
    store = _store(3, 0.7)
    profile = dataclasses.replace(PROFILES[profile_name], seed=fault_seed)
    baseline = Database(page_size=512, buffer_pages=48, store=store).execute(
        path, doc="d", plan=plan, options=EvalOptions(synopsis=False)
    )
    faulty = Database(
        page_size=512, buffer_pages=48, store=store, faults=profile
    ).execute(path, doc="d", plan=plan)
    assert _outcome(faulty) == _outcome(baseline)
