"""Property: import(tree) followed by export reproduces the tree exactly,
for arbitrary documents, page sizes and layout policies."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.model.builder import TreeBuilder
from repro.model.tags import TagDictionary
from repro.storage.importer import ClusterPolicy, ImportOptions
from repro.storage.store import DocumentStore, check_document, export_tree
from repro.xml.escape import serialize
from repro.xml.parser import parse_document

TAG_NAMES = ["a", "b", "c", "wide", "deep"]

#: content alphabets deliberately include C0 controls and the pieces of a
#: CDATA terminator — the serializer must keep both re-importable
TEXT_ALPHABET = "abc \r\x01]>"
ATTR_ALPHABET = "xyz\r\n\t\x02\"]>"


@st.composite
def documents(draw):
    """Random logical trees, biased toward shapes that stress clustering:
    deep chains, wide fan-outs, text-heavy leaves."""
    tags = TagDictionary()
    builder = TreeBuilder(tags)
    builder.start_element("root")
    n_events = draw(st.integers(min_value=1, max_value=120))
    depth = 1
    for _ in range(n_events):
        action = draw(st.integers(min_value=0, max_value=9))
        if action <= 4:  # open element
            name = draw(st.sampled_from(TAG_NAMES))
            n_attrs = draw(st.integers(min_value=0, max_value=2))
            attrs = [
                (f"k{i}", draw(st.text(alphabet=ATTR_ALPHABET, max_size=8)))
                for i in range(n_attrs)
            ]
            builder.start_element(name, attrs)
            depth += 1
        elif action <= 6 and depth > 1:  # close element
            builder.end_element()
            depth -= 1
        elif action <= 8:  # text
            builder.text(draw(st.text(alphabet=TEXT_ALPHABET, min_size=1, max_size=30)))
        else:  # wide burst of small children
            for i in range(draw(st.integers(min_value=5, max_value=40))):
                builder.start_element("w")
                builder.end_element()
    while depth > 1:
        builder.end_element()
        depth -= 1
    builder.end_element()
    return tags, builder.finish()


@given(
    documents(),
    st.sampled_from([256, 512, 1024]),
    st.sampled_from([ClusterPolicy.BEST_FIT, ClusterPolicy.SEQUENTIAL]),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=3),
)
@settings(max_examples=60, deadline=None)
def test_import_export_round_trip(doc, page_size, policy, fragmentation, seed):
    tags, tree = doc
    store = DocumentStore(page_size=page_size, tags=tags)
    try:
        stored = store.import_document(
            tree,
            "d",
            ImportOptions(
                page_size=page_size,
                policy=policy,
                fragmentation=fragmentation,
                seed=seed,
            ),
        )
    except StorageError as error:
        # a single record (plus its co-located attributes) can genuinely
        # exceed a tiny page — the importer must reject it *explicitly*
        # (the row-size limit), never corrupt the store
        assume("cannot be stored" not in str(error))
        raise
    check_document(store, stored)
    assert serialize(export_tree(store, stored)) == serialize(tree)
    # every page respects its capacity
    for page_no in stored.page_nos:
        page = store.segment.page(page_no)
        assert page.used_bytes <= page.capacity


@given(documents())
@settings(max_examples=60, deadline=None)
def test_serialize_reparse_round_trip(doc):
    """serialize → parse → serialize is a fixpoint, even for content with
    C0 control characters and CDATA-terminator fragments.

    ``keep_whitespace_text`` is set because the generator legitimately
    produces whitespace-only text nodes; what must *never* need it is a
    control character — those are serialized as character references.
    """
    _, tree = doc
    text = serialize(tree)
    reparsed = parse_document(text, keep_whitespace_text=True)
    assert serialize(reparsed) == text


@given(documents())
@settings(max_examples=30, deadline=None)
def test_ordpaths_sort_as_preorder(doc):
    tags, tree = doc
    store = DocumentStore(page_size=512, tags=tags)
    stored = store.import_document(tree, "d", ImportOptions(page_size=512))
    result = stored.import_result
    labels = []
    for node in range(len(tree)):
        nid = result.nodeid_of(node)
        from repro.storage.nodeid import page_of, slot_of

        record = store.segment.page(page_of(nid)).record(slot_of(nid))
        labels.append(record.ordpath)
    assert labels == sorted(labels)
    assert len(set(labels)) == len(labels)
