"""Property-based tests for ORDPATH labels (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.ordpath import OrdPath, label_between


@st.composite
def insertion_scripts(draw):
    """A sequence of insertion positions into a growing sibling list."""
    length = draw(st.integers(min_value=1, max_value=60))
    return [draw(st.integers(min_value=0, max_value=i + 1)) for i in range(length)]


@given(insertion_scripts())
@settings(max_examples=200)
def test_arbitrary_insertions_preserve_strict_order(script):
    root = OrdPath.root()
    labels = [root.child(0)]
    for position in script:
        left = labels[position - 1] if position > 0 else None
        right = labels[position] if position < len(labels) else None
        mid = label_between(left, right)
        if left is not None:
            assert left < mid
        if right is not None:
            assert mid < right
        labels.insert(position, mid)
    assert labels == sorted(labels)
    assert len(set(labels)) == len(labels)


@given(insertion_scripts())
@settings(max_examples=100)
def test_insertions_preserve_level_and_parentage(script):
    root = OrdPath.root()
    labels = [root.child(0)]
    for position in script:
        left = labels[position - 1] if position > 0 else None
        right = labels[position] if position < len(labels) else None
        mid = label_between(left, right)
        labels.insert(position, mid)
    for label in labels:
        assert label.level() == 2  # all are children of the root
        assert root.is_ancestor_of(label)
        assert list(label.parent_prefixes()) == [root]


@given(st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=6))
@settings(max_examples=200)
def test_child_labels_sort_with_subtrees(path_indices):
    """A node's label sorts before all labels in its subtree and the
    subtree sorts contiguously before the next sibling."""
    node = OrdPath.root()
    for index in path_indices:
        child = node.child(index)
        assert node < child
        assert node.is_ancestor_of(child)
        sibling = child.next_sibling_label()
        grandchild = child.child(5)
        assert child < grandchild < sibling
        node = child
