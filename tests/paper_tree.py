"""Hand-built storage layout of the paper's running example (Fig. 3/5).

Four clusters a, b, c, d on physical pages 0..3.  The document tree::

    d1 (root, cluster d)
    ├── a2 :A (cluster a)
    │   └── a3 :B
    ├── c2 :A (cluster c)
    │   ├── c3 :X
    │   └── c4 :B
    └── d4 :C (cluster d)
        └── b2 :X (cluster b)

Border nodes (paper names): a1 = up-border of cluster a, b1 of b, c1 of
c; d2, d3, d5 = down-borders in cluster d leading to a, c and b.

Query ``/A//B`` from context d1 selects a3 and c4.  Example 6 (XSchedule)
visits clusters d, a, c and never b; Example 7 (XScan) scans a, b, c, d
and resolves both results via speculative left-incomplete instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import Database
from repro.model.tree import Kind
from repro.storage.importer import ImportResult
from repro.storage.nodeid import NodeID, make_nodeid
from repro.storage.ordpath import OrdPath
from repro.storage.page import Page
from repro.storage.record import BorderRecord, CoreRecord
from repro.storage.store import StoredDocument

PAGE_A, PAGE_B, PAGE_C, PAGE_D = 0, 1, 2, 3


@dataclass
class PaperTree:
    db: Database
    doc: StoredDocument
    nodes: dict[str, NodeID]  #: paper names -> NodeIDs (core and border)


def build_paper_tree(
    page_size: int = 512, buffer_pages: int = 8, geometry=None
) -> PaperTree:
    db = Database(page_size=page_size, buffer_pages=buffer_pages, geometry=geometry)
    tags = db.tags
    tag_a, tag_b, tag_c, tag_x = (tags.intern(t) for t in ("A", "B", "C", "X"))
    doc_tag = tags.intern("#document")  # pre-interned pseudo tag (id 0)

    pages = [Page(i, page_size) for i in range(4)]
    a_page, b_page, c_page, d_page = pages

    def ordpath(*components: int) -> OrdPath:
        return OrdPath(components)

    # cluster a: a1 (up-border), a2:A, a3:B
    a1 = a_page.add(BorderRecord(None, local_slot=1, down=False))
    a2 = a_page.add(CoreRecord(Kind.ELEMENT, tag_a, ordpath(1, 1), parent_slot=a1))
    a3 = a_page.add(CoreRecord(Kind.ELEMENT, tag_b, ordpath(1, 1, 1), parent_slot=a2))
    a_page.records[a2].child_slots.append(a3)

    # cluster b: b1 (up-border), b2:X
    b1 = b_page.add(BorderRecord(None, local_slot=1, down=False))
    b2 = b_page.add(CoreRecord(Kind.ELEMENT, tag_x, ordpath(1, 5, 1), parent_slot=b1))

    # cluster c: c1 (up-border), c2:A, c3:X, c4:B
    c1 = c_page.add(BorderRecord(None, local_slot=1, down=False))
    c2 = c_page.add(CoreRecord(Kind.ELEMENT, tag_a, ordpath(1, 3), parent_slot=c1))
    c3 = c_page.add(CoreRecord(Kind.ELEMENT, tag_x, ordpath(1, 3, 1), parent_slot=c2))
    c4 = c_page.add(CoreRecord(Kind.ELEMENT, tag_b, ordpath(1, 3, 3), parent_slot=c2))
    c_page.records[c2].child_slots.extend([c3, c4])

    # cluster d: d1 (document root), d2->a, d3->c, d4:C, d5->b
    d1 = d_page.add(CoreRecord(Kind.DOCUMENT, doc_tag, ordpath(1), parent_slot=-1))
    d2 = d_page.add(BorderRecord(None, local_slot=d1, down=True))
    d3 = d_page.add(BorderRecord(None, local_slot=d1, down=True))
    d4 = d_page.add(CoreRecord(Kind.ELEMENT, tag_c, ordpath(1, 5), parent_slot=d1))
    d5 = d_page.add(BorderRecord(None, local_slot=d4, down=True))
    d_page.records[d1].child_slots.extend([d2, d3, d4])
    d_page.records[d4].child_slots.append(d5)

    # back-patch border pairs
    def pair(page_i: Page, slot_i: int, page_j: Page, slot_j: int) -> None:
        page_i.records[slot_i].companion = make_nodeid(page_j.page_no, slot_j)
        page_j.records[slot_j].companion = make_nodeid(page_i.page_no, slot_i)

    pair(d_page, d2, a_page, a1)
    pair(d_page, d3, c_page, c1)
    pair(d_page, d5, b_page, b1)

    for page in pages:
        db.store.segment.adopt(page)

    nodes = {
        "a1": make_nodeid(PAGE_A, a1),
        "a2": make_nodeid(PAGE_A, a2),
        "a3": make_nodeid(PAGE_A, a3),
        "b1": make_nodeid(PAGE_B, b1),
        "b2": make_nodeid(PAGE_B, b2),
        "c1": make_nodeid(PAGE_C, c1),
        "c2": make_nodeid(PAGE_C, c2),
        "c3": make_nodeid(PAGE_C, c3),
        "c4": make_nodeid(PAGE_C, c4),
        "d1": make_nodeid(PAGE_D, d1),
        "d2": make_nodeid(PAGE_D, d2),
        "d3": make_nodeid(PAGE_D, d3),
        "d4": make_nodeid(PAGE_D, d4),
        "d5": make_nodeid(PAGE_D, d5),
    }

    doc = StoredDocument(
        name="paper",
        root=nodes["d1"],
        page_nos=[PAGE_A, PAGE_B, PAGE_C, PAGE_D],
        n_nodes=7,
        n_border_pairs=3,
        n_continuations=0,
        import_result=None,  # type: ignore[arg-type]
        statistics=None,
    )
    db.store.documents["paper"] = doc
    return PaperTree(db=db, doc=doc, nodes=nodes)
