"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro import Database, ImportOptions
from repro.model.builder import TreeBuilder
from repro.model.tags import TagDictionary
from repro.model.tree import LogicalTree


def make_random_tree(
    tags: TagDictionary,
    seed: int,
    n_top: int = 40,
    max_depth: int = 6,
    tag_pool: str = "abcde",
    with_attributes: bool = True,
    with_text: bool = True,
) -> LogicalTree:
    """A reproducible random document used across the suite."""
    rng = random.Random(seed)
    builder = TreeBuilder(tags)
    builder.start_element("root")

    def gen(depth: int) -> None:
        attrs = []
        if with_attributes and rng.random() < 0.35:
            attrs = [("id", str(rng.randrange(64)))]
        builder.start_element(rng.choice(tag_pool), attrs)
        n = rng.randrange(5) if depth < max_depth else 0
        for _ in range(n):
            if with_text and rng.random() < 0.25:
                builder.text("t" * rng.randrange(1, 15))
            else:
                gen(depth + 1)
        builder.end_element()

    for _ in range(n_top):
        gen(0)
    builder.end_element()
    return builder.finish()


def small_database(
    seed: int = 0,
    page_size: int = 512,
    buffer_pages: int = 64,
    fragmentation: float = 0.5,
    n_top: int = 40,
) -> tuple[Database, LogicalTree]:
    """A database with one imported random document named ``d``."""
    db = Database(page_size=page_size, buffer_pages=buffer_pages)
    tree = make_random_tree(db.tags, seed, n_top=n_top)
    db.add_tree(
        tree, "d", ImportOptions(page_size=page_size, fragmentation=fragmentation, seed=seed)
    )
    return db, tree


@pytest.fixture
def db_and_tree() -> tuple[Database, LogicalTree]:
    return small_database(seed=7)


@pytest.fixture(scope="session")
def xmark_small():
    """A small XMark database shared across integration tests."""
    from repro.xmark import generate_xmark

    db = Database(page_size=2048, buffer_pages=128)
    tree = generate_xmark(scale=0.05, tags=db.tags, seed=3)
    db.add_tree(
        tree, "xmark", ImportOptions(page_size=2048, fragmentation=1.0, seed=3)
    )
    return db, tree
