"""Serialization round-trip tests."""

from repro.model.builder import tree_from_nested
from repro.xml.escape import escape_attribute, escape_text, serialize
from repro.xml.parser import parse_document


def test_escape_text():
    assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"


def test_escape_attribute():
    assert escape_attribute('say "hi" & <go>') == "say &quot;hi&quot; &amp; &lt;go>"


def test_serialize_empty_element():
    tree = tree_from_nested(("a",))
    assert serialize(tree) == "<a/>"


def test_serialize_with_attributes_and_text():
    tree = tree_from_nested(("a", {"x": "1"}, [("b", ["hi"]), "tail"]))
    assert serialize(tree) == '<a x="1"><b>hi</b>tail</a>'


def test_round_trip_identity():
    source = '<a x="1&amp;2"><b>text &lt;here&gt;</b><c/><d>mixed<e/>tail</d></a>'
    tree = parse_document(source)
    assert serialize(tree) == source.replace("&amp;2", "&amp;2")  # canonical already
    # and a second parse of the serialization is stable
    again = parse_document(serialize(tree))
    assert serialize(again) == serialize(tree)


def test_indented_output_parses_back():
    tree = tree_from_nested(("a", [("b", [("c",)]), ("d",)]))
    pretty = serialize(tree, indent=True)
    assert "\n" in pretty
    reparsed = parse_document(pretty)
    assert serialize(reparsed) == serialize(tree)
