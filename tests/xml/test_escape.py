"""Serialization round-trip tests."""

from repro.model.builder import tree_from_nested
from repro.xml.escape import escape_attribute, escape_text, serialize
from repro.xml.parser import parse_document


def test_escape_text():
    assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"


def test_escape_attribute():
    assert escape_attribute('say "hi" & <go>') == "say &quot;hi&quot; &amp; &lt;go>"


def test_serialize_empty_element():
    tree = tree_from_nested(("a",))
    assert serialize(tree) == "<a/>"


def test_serialize_with_attributes_and_text():
    tree = tree_from_nested(("a", {"x": "1"}, [("b", ["hi"]), "tail"]))
    assert serialize(tree) == '<a x="1"><b>hi</b>tail</a>'


def test_round_trip_identity():
    source = '<a x="1&amp;2"><b>text &lt;here&gt;</b><c/><d>mixed<e/>tail</d></a>'
    tree = parse_document(source)
    assert serialize(tree) == source.replace("&amp;2", "&amp;2")  # canonical already
    # and a second parse of the serialization is stable
    again = parse_document(serialize(tree))
    assert serialize(again) == serialize(tree)


def test_indented_output_parses_back():
    tree = tree_from_nested(("a", [("b", [("c",)]), ("d",)]))
    pretty = serialize(tree, indent=True)
    assert "\n" in pretty
    reparsed = parse_document(pretty)
    assert serialize(reparsed) == serialize(tree)


def test_control_characters_escape_as_charrefs():
    assert escape_text("a\rb") == "a&#13;b"
    assert escape_text("\x01\x1f") == "&#1;&#31;"
    # tab and newline stay literal in element content
    assert escape_text("a\tb\nc") == "a\tb\nc"
    # attributes escape every control, including tab/newline
    assert escape_attribute("a\rb\nc\td") == "a&#13;b&#10;c&#9;d"
    assert escape_attribute("\x00") == "&#0;"


def test_control_character_text_round_trips():
    """A text node of bare controls must survive re-import.

    Serialized raw, ``"\\r"`` is a whitespace-only text node *before*
    entity decoding, so the parser's whitespace filter silently drops it.
    """
    tree = tree_from_nested(("a", ["\r"]))
    assert serialize(parse_document(serialize(tree))) == serialize(tree)
    mixed = tree_from_nested(("a", {"x": "v\r\n"}, ["pre\x02post"]))
    assert serialize(parse_document(serialize(mixed))) == serialize(mixed)


def test_cdata_terminator_round_trips():
    """A literal ``]]>`` in element content can never appear unescaped."""
    tree = tree_from_nested(("a", ["w]]>w"]))
    text = serialize(tree)
    assert "]]>" not in text  # every > in content is &gt;
    assert serialize(parse_document(text)) == text
    # in a quoted attribute value "]]>" is legal; it must still round-trip
    attr = tree_from_nested(("a", {"x": "]]>"}))
    assert serialize(parse_document(serialize(attr))) == serialize(attr)
