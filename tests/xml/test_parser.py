"""Tests for the from-scratch XML parser."""

import pytest

from repro.errors import XmlSyntaxError
from repro.model.tree import Kind
from repro.xml.parser import parse_document


def test_minimal_document():
    tree = parse_document("<a/>")
    tree.validate()
    assert tree.count_tag("a") == 1


def test_nested_elements_structure():
    tree = parse_document("<a><b><c/></b><b/></a>")
    tree.validate()
    root_children = list(tree.element_children(tree.root))
    assert len(root_children) == 1
    a = root_children[0]
    assert tree.tag_name(a) == "a"
    bs = list(tree.element_children(a))
    assert [tree.tag_name(b) for b in bs] == ["b", "b"]
    assert [tree.tag_name(c) for c in tree.element_children(bs[0])] == ["c"]


def test_attributes_parsed_in_order():
    tree = parse_document('<a x="1" y="two" z=\'3\'/>')
    a = next(tree.element_children(tree.root))
    attrs = [(tree.tag_name(n), tree.value_of(n)) for n in tree.attributes(a)]
    assert attrs == [("x", "1"), ("y", "two"), ("z", "3")]


def test_text_content_and_entities():
    tree = parse_document("<a>x &amp; y &lt;z&gt; &quot;q&quot; &apos;s&apos;</a>")
    a = next(tree.element_children(tree.root))
    text = next(tree.element_children(a))
    assert tree.value_of(text) == "x & y <z> \"q\" 's'"


def test_numeric_character_references():
    tree = parse_document("<a>&#65;&#x42;</a>")
    a = next(tree.element_children(tree.root))
    assert tree.value_of(next(tree.element_children(a))) == "AB"


def test_cdata_section():
    tree = parse_document("<a><![CDATA[<not & parsed>]]></a>")
    a = next(tree.element_children(tree.root))
    assert tree.value_of(next(tree.element_children(a))) == "<not & parsed>"


def test_comments_and_pis_skipped():
    tree = parse_document("<?xml version='1.0'?><!-- c --><a><!-- x --><?pi data?><b/></a><!-- end -->")
    tree.validate()
    assert tree.count_tag("b") == 1


def test_doctype_skipped():
    tree = parse_document("<!DOCTYPE a [<!ELEMENT a (b)>]><a><b/></a>")
    assert tree.count_tag("b") == 1


def test_whitespace_only_text_dropped_by_default():
    tree = parse_document("<a>\n  <b/>\n</a>")
    a = next(tree.element_children(tree.root))
    kinds = [tree.kind_of(c) for c in tree.element_children(a)]
    assert kinds == [Kind.ELEMENT]


def test_whitespace_kept_when_requested():
    tree = parse_document("<a>\n<b/></a>", keep_whitespace_text=True)
    a = next(tree.element_children(tree.root))
    kinds = [tree.kind_of(c) for c in tree.element_children(a)]
    assert kinds == [Kind.TEXT, Kind.ELEMENT]


def test_mixed_content():
    tree = parse_document("<a>one<b/>two</a>")
    a = next(tree.element_children(tree.root))
    parts = [
        tree.value_of(c) if tree.kind_of(c) == Kind.TEXT else tree.tag_name(c)
        for c in tree.element_children(a)
    ]
    assert parts == ["one", "b", "two"]


@pytest.mark.parametrize(
    "bad",
    [
        "",
        "text only",
        "<a>",
        "<a></b>",
        "<a><b></a></b>",
        "<a/><b/>",
        "<a x=1/>",
        '<a x="1" x="2"/>',
        "<a>&unknown;</a>",
        "<a>&#xZZ;</a>",
        "<a><!-- unterminated </a>",
        '<a x="<"/>',
        "<a>trailing</a>junk",
    ],
)
def test_malformed_documents_rejected(bad):
    with pytest.raises(XmlSyntaxError):
        parse_document(bad)


def test_error_reports_position():
    with pytest.raises(XmlSyntaxError) as excinfo:
        parse_document("<a><b></c></a>")
    assert excinfo.value.position > 0


def test_namespace_prefixes_kept_opaque():
    tree = parse_document('<ns:a xmlns:ns="u"><ns:b/></ns:a>')
    assert tree.count_tag("ns:a") == 1
    assert tree.count_tag("ns:b") == 1
