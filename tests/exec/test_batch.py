"""Tests for batched multi-query execution over one shared runtime."""

import pytest

from repro import run_batch
from repro.errors import PlanError
from repro.xmark import Q6_PRIME, Q7

from tests.conftest import small_database

#: the location paths underneath the paper's Q6' and Q7
Q6_Q7_PATHS = [
    "/site/regions//item",
    "/site//description",
    "/site//annotation",
    "/site//emailaddress",
]


def test_batch_matches_sequential_and_shares_io(xmark_small):
    """Acceptance: identical node sets, strictly fewer io_requests than
    the sum of one-at-a-time cold runs."""
    db, _ = xmark_small
    sequential = [db.execute(p, doc="xmark") for p in Q6_Q7_PATHS]
    outcome = db.run_batch(Q6_Q7_PATHS, doc="xmark")
    for result, cold in zip(outcome.results, sequential):
        assert result.nodes == cold.nodes
    assert outcome.stats.io_requests < sum(r.stats.io_requests for r in sequential)
    assert outcome.stats.pages_read < sum(r.stats.pages_read for r in sequential)


def test_batch_numeric_queries_match(xmark_small):
    db, _ = xmark_small
    outcome = db.run_batch([Q6_PRIME, Q7], doc="xmark")
    assert outcome.results[0].value == db.execute(Q6_PRIME, doc="xmark").value
    assert outcome.results[1].value == db.execute(Q7, doc="xmark").value


def test_explicit_plans_route_to_the_right_phase():
    db, _ = small_database(seed=0)
    outcome = db.run_batch(
        [("//a", "d", "xscan"), ("//b", "d", "xscan"), ("//a/b", "d", "xschedule")]
    )
    assert outcome.scan_shared == 2
    assert outcome.interleaved == 1
    assert outcome.results[0].nodes == db.execute("//a", doc="d").nodes
    assert outcome.results[2].nodes == db.execute("//a/b", doc="d").nodes


def test_auto_paths_promoted_onto_shared_scan():
    db, _ = small_database(seed=1)
    outcome = db.run_batch(["//a", "//b"], doc="d")
    assert outcome.scan_shared == 2
    assert outcome.interleaved == 0


def test_simple_plan_queries_interleave():
    db, _ = small_database(seed=1)
    outcome = db.run_batch([("//a", "d", "simple"), ("//b", "d", "simple")])
    assert outcome.scan_shared == 0
    assert outcome.interleaved == 2
    assert outcome.results[0].nodes == db.execute("//a", doc="d").nodes
    assert outcome.results[1].nodes == db.execute("//b", doc="d").nodes


def test_shared_io_attribution():
    db, _ = small_database(seed=2)
    outcome = db.run_batch(["//a", "//b", "//c"], doc="d")
    assert all(r.shared_io_queries == 3 for r in outcome.results)
    assert all(r.stats is outcome.stats for r in outcome.results)
    # a standalone execute is unshared
    assert db.execute("//a", doc="d").shared_io_queries == 1


def test_batch_timing_is_finished_at_on_the_shared_clock():
    db, _ = small_database(seed=2)
    outcome = db.run_batch(["//a", "//b"], doc="d")
    for result in outcome.results:
        assert 0 < result.total_time <= outcome.total_time
        assert result.total_time == pytest.approx(result.cpu_time + result.io_wait)
    assert outcome.total_time == pytest.approx(outcome.cpu_time + outcome.io_wait)


def test_duplicate_queries_share_one_plan():
    db, _ = small_database(seed=3)
    outcome = db.run_batch(["//a", "//a"], doc="d")
    assert outcome.results[0].nodes == outcome.results[1].nodes
    assert outcome.results[0].nodes == db.execute("//a", doc="d").nodes


def test_batch_through_warm_session_reuses_buffer():
    # buffer large enough to hold the whole document, so the second
    # batch's scan finds every page resident
    db, _ = small_database(seed=4, buffer_pages=512)
    session = db.session(warm=True)
    first = session.run_batch(["//a", "//b"], doc="d")
    compiles_after_first = session.compiles
    second = session.run_batch(["//a", "//b"], doc="d")
    assert [r.nodes for r in second.results] == [r.nodes for r in first.results]
    assert second.stats.pages_read <= first.stats.pages_read
    assert second.total_time < first.total_time
    assert session.runs == 4
    # the second batch is all plan-cache hits
    assert session.compiles == compiles_after_first


def test_batch_accounts_shared_stats_once():
    db, _ = small_database(seed=4)
    session = db.session()
    outcome = session.run_batch(["//a", "//b"], doc="d")
    assert session.stats.io_requests == outcome.stats.io_requests
    assert session.total_time == pytest.approx(outcome.total_time)


def test_empty_batch_rejected():
    db, _ = small_database(seed=0)
    with pytest.raises(PlanError):
        db.run_batch([])


def test_module_level_run_batch_entry_point():
    db, _ = small_database(seed=5)
    outcome = run_batch(db.session(), ["//a"], doc="d")
    assert outcome.results[0].nodes == db.execute("//a", doc="d").nodes
