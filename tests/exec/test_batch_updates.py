"""Tests for update operations inside query batches."""

import os

from repro import Database, DeleteOp, InsertOp, SetValueOp
from repro.storage.store import check_document
from repro.storage.wal import recover_store

XML = (
    "<root><people><person><name>alice</name></person>"
    "<person><name>bob</name></person></people>"
    "<items><item>one</item><item>two</item></items></root>"
)


def fresh(tmp_path=None):
    db = Database(page_size=512, buffer_pages=32)
    db.load_xml(XML, "d")
    if tmp_path is not None:
        db.attach_wal(str(tmp_path / "store.rpro"))
    return db, db.session(warm=True)


def test_updates_interleave_with_queries_in_order():
    db, session = fresh()
    root = db.execute("/root", doc="d", plan="simple").nodes[0]
    outcome = session.run_batch(
        [
            "count(//extra)",
            InsertOp(parent=root, position=0, tag_name="extra"),
            "count(//extra)",
        ],
        doc="d",
    )
    before, inserted, after = outcome.results
    assert before.value == 0.0
    assert after.value == 1.0  # the query run after the update sees it
    assert inserted.nodes is not None and len(inserted.nodes) == 1
    assert inserted.query == "insert(extra)"
    assert inserted.plan_kinds == []
    assert outcome.updates == 1
    check_document(db.store, db.store.document("d"))


def test_delete_and_set_value_results():
    db, session = fresh()
    person = db.execute("//person", doc="d", plan="simple").nodes[0]
    text = db.execute("//item/text()", doc="d", plan="simple").nodes[0]
    outcome = session.run_batch(
        [
            SetValueOp(nid=text, value="three"),
            DeleteOp(nid=person),
            "count(//person)",
        ],
        doc="d",
    )
    set_result, delete_result, count = outcome.results
    assert set_result.value is None and set_result.nodes is None
    assert set_result.query == "set-value"
    assert delete_result.value and delete_result.value > 1  # subtree size
    assert count.value == 1.0
    assert outcome.updates == 2


def test_update_run_owns_one_group_commit_window(tmp_path, monkeypatch):
    db, session = fresh(tmp_path)
    root = db.execute("/root", doc="d", plan="simple").nodes[0]
    syncs = []
    monkeypatch.setattr(os, "fsync", lambda fd: syncs.append(fd))
    session.run_batch(
        [
            InsertOp(parent=root, position=0, tag_name="one"),
            InsertOp(parent=root, position=0, tag_name="two"),
            InsertOp(parent=root, position=0, tag_name="three"),
        ],
        doc="d",
    )
    assert len(syncs) == 1  # one fsync for the whole run, not three
    session.run_batch(
        [
            InsertOp(parent=root, position=0, tag_name="four"),
            "count(//four)",
            InsertOp(parent=root, position=0, tag_name="five"),
        ],
        doc="d",
    )
    assert len(syncs) == 3  # two separate update runs, one sync each


def test_batched_updates_are_durable(tmp_path):
    db, session = fresh(tmp_path)
    root = db.execute("/root", doc="d", plan="simple").nodes[0]
    session.run_batch(
        [
            InsertOp(parent=root, position=0, tag_name="extra"),
            "count(//extra)",
            InsertOp(parent=root, position=0, tag_name="extra"),
        ],
        doc="d",
    )
    store, report = recover_store(db.wal.store_path)
    assert report.last_lsn == 2
    recovered = Database(page_size=512, buffer_pages=32, store=store)
    assert recovered.execute("count(//extra)", doc="d").value == 2.0


def test_updates_work_without_wal():
    db, session = fresh()
    assert db.wal is None
    root = db.execute("/root", doc="d", plan="simple").nodes[0]
    outcome = session.run_batch(
        [InsertOp(parent=root, position=0, tag_name="extra"), "count(//extra)"],
        doc="d",
    )
    assert outcome.results[1].value == 1.0
    assert outcome.updates == 1


def test_accounting_splits_queries_and_updates():
    db, session = fresh()
    root = db.execute("/root", doc="d", plan="simple").nodes[0]
    runs_before, updates_before = session.runs, session.updates
    session.run_batch(
        [
            "count(//person)",
            InsertOp(parent=root, position=0, tag_name="extra"),
            DeleteOp(nid=db.execute("//item", doc="d", plan="simple").nodes[0]),
            "count(//item)",
        ],
        doc="d",
    )
    assert session.runs == runs_before + 2  # only the queries
    assert session.updates == updates_before + 2


def test_structural_update_drops_cached_plans():
    db, session = fresh()
    root = db.execute("/root", doc="d", plan="simple").nodes[0]
    session.run_batch(["count(//person)", "count(//item)"], doc="d")
    assert session.cached_plans > 0
    session.run_batch(
        [InsertOp(parent=root, position=0, tag_name="extra"), "count(//extra)"],
        doc="d",
    )
    # the cache was cleared by the insert; only the post-update query is
    # in (possibly under several plan keys), nothing from the first batch
    assert session.cached_plans > 0
    assert all(key[0] == "count(//extra)" for key in session._plans)


def test_per_op_document_override():
    db = Database(page_size=512, buffer_pages=32)
    db.load_xml(XML, "d")
    db.load_xml("<other><x/></other>", "e")
    session = db.session(warm=True)
    other_root = db.execute("/other", doc="e", plan="simple").nodes[0]
    outcome = session.run_batch(
        [
            InsertOp(parent=other_root, position=0, tag_name="y", doc="e"),
            ("count(//y)", "e"),
            "count(//person)",  # default doc "d"
        ],
        doc="d",
    )
    assert outcome.results[0].doc == "e"
    assert outcome.results[1].value == 1.0
    assert outcome.results[2].value == 2.0


def test_pure_query_batches_report_zero_updates(xmark_small):
    db, _ = xmark_small
    outcome = db.run_batch(["count(//keyword)", "count(//item)"], doc="xmark")
    assert outcome.updates == 0


def test_update_only_batch():
    db, session = fresh()
    root = db.execute("/root", doc="d", plan="simple").nodes[0]
    outcome = session.run_batch(
        [
            InsertOp(parent=root, position=0, tag_name="a1"),
            InsertOp(parent=root, position=0, tag_name="a2"),
        ],
        doc="d",
    )
    assert outcome.updates == 2
    assert outcome.scan_shared == 0 and outcome.interleaved == 0
    assert all(r.plan_kinds == [] for r in outcome.results)
    assert db.execute("count(/root/*)", doc="d").value == 4.0
