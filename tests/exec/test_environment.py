"""Tests for the execution environment: runtime wiring in one place."""

import pytest

from repro import Database, EvalOptions, ReproError
from repro.exec.environment import ExecutionEnvironment
from repro.sim.disk import DiskGeometry, SchedulingPolicy

from tests.conftest import small_database


def test_fresh_context_is_cold():
    db, _ = small_database(seed=0)
    ctx = db.env.fresh_context()
    assert ctx.clock.now == 0.0
    assert ctx.stats.pages_read == 0
    assert ctx.current_frame is None
    assert not ctx.fallback


def test_fresh_contexts_are_independent():
    db, _ = small_database(seed=0)
    a = db.env.fresh_context()
    b = db.env.fresh_context()
    assert a.clock is not b.clock
    assert a.buffer is not b.buffer
    assert a.stats is not b.stats
    a.clock.work(1.0)
    assert b.clock.now == 0.0


def test_view_shares_physical_components():
    db, _ = small_database(seed=1)
    shared = db.env.fresh_context()
    view = db.env.view(shared)
    assert view.clock is shared.clock
    assert view.buffer is shared.buffer
    assert view.iosys is shared.iosys
    assert view.stats is shared.stats
    # ... but has private per-query state
    assert view is not shared
    view.fallback = True
    assert not shared.fallback


def test_view_options_override():
    db, _ = small_database(seed=1)
    shared = db.env.fresh_context()
    opts = EvalOptions(k_min_queue=7)
    assert db.env.view(shared, opts).options.k_min_queue == 7
    assert db.env.view(shared).options is shared.options


def test_geometry_mismatch_rejected():
    db, _ = small_database(seed=0)
    with pytest.raises(ReproError):
        ExecutionEnvironment(db.store.segment, db.store.tags, geometry=DiskGeometry(page_size=8192))


def test_environment_counts_contexts():
    db, _ = small_database(seed=0)
    built = db.env.contexts_built
    db.execute("count(//a)", doc="d")
    assert db.env.contexts_built == built + 1


def test_database_wires_through_environment():
    db = Database(page_size=512, buffer_pages=32, disk_policy=SchedulingPolicy.FIFO)
    assert db.env.buffer_pages == 32
    assert db.env.disk_policy is SchedulingPolicy.FIFO
    assert db.env.segment is db.store.segment
    assert db.geometry is db.env.geometry


# --------------------------------------------------- Database.load sharing


def test_load_shares_constructor_fields(tmp_path):
    """``load`` goes through ``__init__``: a new engine field can never be
    silently missing on the load path."""
    db, _ = small_database(seed=3)
    path = str(tmp_path / "store.rpro")
    db.save(path)
    loaded = Database.load(path, buffer_pages=17)
    assert set(vars(loaded)) == set(vars(db))
    assert loaded.buffer_pages == 17
    assert loaded.env.buffer_pages == 17


def test_load_roundtrip_executes_identically(tmp_path):
    db, _ = small_database(seed=4)
    expected = db.execute("//a/b", doc="d", plan="xscan")
    path = str(tmp_path / "store.rpro")
    db.save(path)
    loaded = Database.load(path)
    result = loaded.execute("//a/b", doc="d", plan="xscan")
    assert result.nodes == expected.nodes


def test_load_rejects_mismatched_geometry(tmp_path):
    db, _ = small_database(seed=4)  # page_size 512
    path = str(tmp_path / "store.rpro")
    db.save(path)
    with pytest.raises(ReproError):
        Database.load(path, geometry=DiskGeometry(page_size=8192))
