"""Tests for the chooser feedback store and its session wiring."""

import pytest

from repro import Database, EvalOptions, ImportOptions, Tracer
from repro.exec.calibration import CalibrationStore, shape_key
from repro.model.builder import tree_from_nested
from repro.sim.costmodel import ChooserCostModel, ChooserSample, fit_chooser_model
from repro.xpath.compile import PlanKind
from tests.conftest import small_database


def _steps_of(db, query, doc="d"):
    """The compiled step tuple of a single-path query."""
    compiled = db.prepare(query, doc, PlanKind.XSCHEDULE)
    plans = compiled.path_plans()
    assert len(plans) == 1
    return list(plans[0].steps)


def _prediction(db, query, doc="d", **kwargs):
    from repro.xpath.estimate import predict_io_costs

    return predict_io_costs(
        db.store.document(doc), _steps_of(db, query, doc), db.geometry, **kwargs
    )


# ------------------------------------------------------------- store logic


def test_measured_argmin_wins_once_both_observed():
    db, _ = small_database(seed=3)
    steps = _steps_of(db, "//a")
    store = CalibrationStore()
    store.observe("d", steps, "xscan", 2.0)
    store.observe("d", steps, "xschedule", 1.0)
    assert store.advise("d", steps, _prediction(db, "//a")) == (
        "xschedule",
        "measured",
    )
    # flip the balance: the running means decide, not the last sample
    store.observe("d", steps, "xschedule", 9.0)
    assert store.observed_mean("d", steps, "xschedule") == pytest.approx(5.0)
    assert store.advise("d", steps, _prediction(db, "//a")) == ("xscan", "measured")


def test_explore_picks_the_unobserved_arm_on_low_margin():
    db, _ = small_database(seed=3)
    steps = _steps_of(db, "//a")
    prediction = _prediction(db, "//a")
    store = CalibrationStore(margin_threshold=float("inf"))  # everything is a coin flip
    assert store.advise("d", steps, prediction) is None  # nothing observed yet
    store.observe("d", steps, "xscan", 1.5)
    assert store.advise("d", steps, prediction) == ("xschedule", "explore")
    store.clear()
    store.observe("d", steps, "xschedule", 1.5)
    assert store.advise("d", steps, prediction) == ("xscan", "explore")


def test_confident_predictions_are_not_explored():
    """Above the margin threshold the estimator is trusted even with one
    arm observed — exploration is only worth a run on coin flips."""
    db, _ = small_database(seed=3)
    steps = _steps_of(db, "//a")
    prediction = _prediction(db, "//a")
    assert prediction.relative_margin > 0.25  # the fixture is clear-cut
    store = CalibrationStore(margin_threshold=0.25)
    store.observe("d", steps, "xscan", 1.5)
    assert store.advise("d", steps, prediction) is None
    # ... and with no prediction at all there is nothing to doubt
    assert store.advise("d", steps, None) is None


def test_observations_keyed_by_shape_not_query_text():
    db, _ = small_database(seed=3)
    store = CalibrationStore()
    steps = _steps_of(db, "//a")
    same_shape = _steps_of(db, "/descendant-or-self::node()/child::a")
    store.observe("d", steps, "xscan", 1.0)
    store.observe("d", steps, "xschedule", 2.0)
    assert shape_key("d", steps) == shape_key("d", same_shape)
    assert store.advise("d", same_shape, None) == ("xscan", "measured")
    # a different document is a different key
    assert store.advise("other", steps, None) is None


def test_unknown_plan_families_are_ignored():
    db, _ = small_database(seed=3)
    steps = _steps_of(db, "//a")
    store = CalibrationStore()
    store.observe("d", steps, "simple", 1.0)
    assert store.observations == 0
    assert store.advise("d", steps, None) is None


# -------------------------------------------------------------- the refit


def test_refit_learns_cpu_constants():
    """Residual regression: observed = io + cpu_per_node * nodes + overhead
    must be recovered (slopes clamped non-negative)."""
    samples = [
        ChooserSample(plan="xscan", work_nodes=n, io_cost=0.5, observed_total=0.5 + 2e-6 * n + 0.125)
        for n in (1000.0, 5000.0, 20000.0)
    ] + [
        ChooserSample(plan="xschedule", work_nodes=n, io_cost=0.25, observed_total=0.25 + 0.03)
        for n in (100.0, 400.0)
    ]
    model = fit_chooser_model(samples)
    assert model.scan_cpu_per_node == pytest.approx(2e-6)
    assert model.scan_overhead == pytest.approx(0.125)
    assert model.sched_cpu_per_node == pytest.approx(0.0)
    assert model.sched_overhead == pytest.approx(0.03)
    # round-trip through the persistence form
    assert ChooserCostModel.from_dict(model.as_dict()) == model


def test_negative_slopes_are_clamped():
    """A decreasing residual (noise) must not turn CPU 'negative' — the
    fit falls back to a pure offset."""
    samples = [
        ChooserSample(plan="xscan", work_nodes=n, io_cost=0.0, observed_total=1.0 - 1e-5 * n)
        for n in (1000.0, 2000.0, 3000.0)
    ]
    model = fit_chooser_model(samples)
    assert model.scan_cpu_per_node == 0.0
    assert model.scan_overhead == pytest.approx(1.0 - 1e-5 * 2000.0)


def test_store_refit_installs_model():
    db, _ = small_database(seed=3)
    steps = _steps_of(db, "//a")
    store = CalibrationStore()
    assert store.refit() is None  # no samples yet: model untouched
    store.observe("d", steps, "xscan", 1.0, _prediction(db, "//a"))
    model = store.refit()
    assert model is not None and store.model is model
    assert len(store.samples) == 1


# --------------------------------------------------------- session wiring


def test_calibration_off_means_no_store():
    db, _ = small_database(seed=1)
    session = db.session(options=EvalOptions(calibration=False))
    assert session.calibration is None
    result = session.execute("count(//a)", "d")
    assert result.value is not None
    assert session.replans == 0


def test_cold_single_path_runs_are_observed():
    db, _ = small_database(seed=1)
    session = db.session()
    store = session.calibration
    assert store is not None and store.observations == 0
    session.execute("//a", "d", plan="xscan")
    session.execute("//a", "d", plan="xschedule")
    assert store.observations == 2
    assert store.advise("d", _steps_of(db, "//a"), None)[1] == "measured"
    # warm sessions never deposit (their buffer poisons the timing)
    warm = db.session(warm=True)
    warm.execute("//a", "d", plan="xscan")
    assert warm.calibration.observations == 0


def test_measured_override_replans_cached_auto_entry():
    """A cached AUTO plan is revalidated against the store: when the
    measured argmin contradicts the cached choice, the entry is dropped,
    the query recompiles, and the new plan records the override."""
    db, _ = small_database(seed=1)
    session = db.session()
    first = session.prepare("//a", "d")
    assert len(first.auto_choices) == 1
    chosen = first.auto_choices[0]
    assert chosen.source == "estimator"
    # fake clean measurements that contradict the estimator's pick
    other = "xscan" if chosen.choice == "xschedule" else "xschedule"
    store = session.calibration
    store.observe("d", list(chosen.steps), chosen.choice, 5.0)
    store.observe("d", list(chosen.steps), other, 1.0)
    replanned = session.prepare("//a", "d")
    assert session.replans == 1
    assert replanned.auto_choices[0].choice == other
    assert replanned.auto_choices[0].source == "measured"
    # the revalidated entry is stable now: next prepare is a plain hit
    hits = session.cache_hits
    again = session.prepare("//a", "d")
    assert again is replanned
    assert session.cache_hits == hits + 1
    assert session.replans == 1


def test_agreeing_measurements_do_not_replan():
    db, _ = small_database(seed=1)
    session = db.session()
    first = session.prepare("//a", "d")
    chosen = first.auto_choices[0]
    store = session.calibration
    store.observe("d", list(chosen.steps), chosen.choice, 1.0)
    other = "xscan" if chosen.choice == "xschedule" else "xschedule"
    store.observe("d", list(chosen.steps), other, 5.0)
    assert session.prepare("//a", "d") is first
    assert session.replans == 0


def test_forced_plans_never_replan():
    """Only AUTO entries carry choices to revalidate; forced plans hit
    the cache unconditionally."""
    db, _ = small_database(seed=1)
    session = db.session()
    forced = session.prepare("//a", "d", plan="xscan")
    assert forced.auto_choices == []
    store = session.calibration
    steps = _steps_of(db, "//a")
    store.observe("d", steps, "xscan", 9.0)
    store.observe("d", steps, "xschedule", 1.0)
    assert session.prepare("//a", "d", plan="xscan") is forced
    assert session.replans == 0


def test_plan_choice_events_traced():
    """Every AUTO resolution lands one plan-choice event (off the
    simulated clock) and the per-source rollup in the summary."""
    tracer = Tracer()
    db = Database(page_size=512, buffer_pages=16, tracer=tracer)
    tree = tree_from_nested(("a", [("b",), ("b",)]), db.tags)
    db.add_tree(tree, "d", ImportOptions(page_size=512))
    session = db.session()
    session.execute("//b", "d")
    assert tracer.plan_choices.get("estimator", 0) >= 1
    summary = tracer.summary()
    assert summary.plan_choices.get("estimator", 0) >= 1
    events = [e for e in tracer.events if e.name == "plan-choice"]
    assert events and events[-1].args["chosen"] in ("xscan", "xschedule")
    assert events[-1].args["source"] == "estimator"
