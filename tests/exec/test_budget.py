"""Tests for execution budgets and option validation."""

import pytest

from repro import (
    BudgetExceededError,
    Database,
    EvalOptions,
    ExecutionBudget,
    FaultProfile,
    PlanError,
)
from tests.conftest import small_database


# -------------------------------------------------------------- validation


@pytest.mark.parametrize(
    "kwargs",
    [
        {"k_min_queue": 0},
        {"memory_limit": -1},
        {"scan_readahead": -1},
        {"latency_slo": 0.0},
        {"latency_slo": -2.0},
    ],
)
def test_eval_options_validate_at_construction(kwargs):
    with pytest.raises(PlanError):
        EvalOptions(**kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_pages": 0},
        {"max_seconds": -1.0},
        {"max_retries": 0},
        {"max_pages": 10, "on_exceeded": "explode"},
    ],
)
def test_budget_validates_at_construction(kwargs):
    with pytest.raises(PlanError):
        ExecutionBudget(**kwargs)


def test_budget_active_flag():
    assert not ExecutionBudget().active
    assert ExecutionBudget(max_pages=1).active
    assert ExecutionBudget(max_seconds=0.5).active


# -------------------------------------------------------------- raise mode


def test_page_budget_raises_by_default():
    db, _ = small_database(seed=3)
    options = EvalOptions(budget=ExecutionBudget(max_pages=2))
    with pytest.raises(BudgetExceededError) as err:
        db.execute("//a", doc="d", plan="simple", options=options)
    assert err.value.dimension == "pages"
    assert err.value.spent > err.value.limit >= 2
    assert not err.value.partial


def test_seconds_budget_raises():
    db, _ = small_database(seed=3)
    options = EvalOptions(budget=ExecutionBudget(max_seconds=1e-9))
    with pytest.raises(BudgetExceededError) as err:
        db.execute("//a", doc="d", plan="xschedule", options=options)
    assert err.value.dimension == "seconds"


def test_retry_budget_raises_under_faults():
    profile = FaultProfile(name="stormy", seed=2, error_rate=0.9, error_burst=2)
    db, _ = small_database(seed=3)
    faulty = Database(page_size=512, buffer_pages=64, store=db.store, faults=profile)
    options = EvalOptions(budget=ExecutionBudget(max_retries=1))
    with pytest.raises(BudgetExceededError) as err:
        faulty.execute("//a", doc="d", plan="simple", options=options)
    assert err.value.dimension == "retries"


# ------------------------------------------------------------- partial mode


def test_partial_mode_returns_a_prefix():
    db, _ = small_database(seed=3)
    full = db.execute("//a", doc="d", plan="simple")
    assert full.degradation is None and not full.partial
    options = EvalOptions(
        budget=ExecutionBudget(max_pages=2, on_exceeded="partial")
    )
    cut = db.execute("//a", doc="d", plan="simple", options=options)
    assert cut.partial and cut.degraded
    assert "budget" in cut.degradation.reasons
    assert len(cut.nodes) < len(full.nodes)
    assert set(cut.nodes) <= set(full.nodes)


def test_partial_mode_count_query():
    db, _ = small_database(seed=3)
    full = db.execute("count(//a)", doc="d", plan="simple")
    options = EvalOptions(
        budget=ExecutionBudget(max_pages=2, on_exceeded="partial")
    )
    cut = db.execute("count(//a)", doc="d", plan="simple", options=options)
    assert cut.partial
    assert cut.value < full.value


@pytest.mark.parametrize("plan", ["simple", "xschedule", "xscan"])
def test_partial_mode_never_crashes_any_plan(plan):
    db, _ = small_database(seed=3)
    options = EvalOptions(
        budget=ExecutionBudget(max_pages=1, on_exceeded="partial")
    )
    result = db.execute("//b//c", doc="d", plan=plan, options=options)
    assert result.partial
    assert result.nodes is not None


def test_generous_budget_changes_nothing():
    db, _ = small_database(seed=3)
    baseline = db.execute("//a", doc="d", plan="xschedule")
    options = EvalOptions(
        budget=ExecutionBudget(max_pages=10**9, max_seconds=10**9, max_retries=10**9)
    )
    result = db.execute("//a", doc="d", plan="xschedule", options=options)
    assert result.nodes == baseline.nodes
    assert result.total_time == baseline.total_time
    assert result.degradation is None


# ---------------------------------------------------------------- sessions


def test_warm_session_attributes_budget_events_per_run():
    db, _ = small_database(seed=3)
    options = EvalOptions(
        budget=ExecutionBudget(max_pages=2, on_exceeded="partial")
    )
    session = db.session(warm=True, options=options)
    first = session.execute("//a", doc="d", plan="simple")
    second = session.execute("//b", doc="d", plan="simple")
    assert first.partial and second.partial
    # each result reports only its own run's events
    assert first.degradation.events != second.degradation.events
    assert session.degraded_runs == 2


def test_session_counts_degraded_runs_only_when_degraded():
    db, _ = small_database(seed=3)
    session = db.session()
    session.execute("//a", doc="d", plan="simple")
    assert session.degraded_runs == 0
