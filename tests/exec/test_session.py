"""Tests for QuerySession: plan cache, warm runtimes, aggregation."""

import pytest

from repro import EvalOptions
from repro.sim.stats import Stats

from tests.conftest import small_database


# ------------------------------------------------------------- plan cache


def test_repeat_execute_hits_plan_cache():
    db, _ = small_database(seed=0)
    session = db.session()
    first = session.execute("//a/b", doc="d")
    assert (session.compiles, session.cache_hits) == (1, 0)
    for _ in range(4):
        result = session.execute("//a/b", doc="d")
        assert result.nodes == first.nodes
    assert session.compiles == 1  # zero recompiles after the first run
    assert session.cache_hits == 4


def test_xmark_query_recompiles_zero_times(xmark_small):
    """Acceptance: re-executing the same XMark query hits the plan cache."""
    db, _ = xmark_small
    session = db.session()
    a = session.execute("count(/site/regions//item)", doc="xmark")
    b = session.execute("count(/site/regions//item)", doc="xmark")
    assert a.value == b.value
    assert session.compiles == 1
    assert session.cache_misses == 1
    assert session.cache_hits == 1


def test_cache_key_includes_plan_doc_and_options():
    db, _ = small_database(seed=1)
    session = db.session()
    session.execute("//a", doc="d", plan="simple")
    session.execute("//a", doc="d", plan="xscan")
    session.execute("//a", doc="d", plan="simple", options=EvalOptions(k_min_queue=9))
    assert session.compiles == 3
    assert session.cache_hits == 0


def test_lru_eviction():
    db, _ = small_database(seed=1)
    session = db.session(cache_size=2)
    session.prepare("//a", doc="d")
    session.prepare("//b", doc="d")
    session.prepare("//c", doc="d")  # evicts //a
    assert session.cached_plans == 2
    session.prepare("//a", doc="d")
    assert session.compiles == 4  # //a was recompiled
    session.prepare("//a", doc="d")
    assert session.cache_hits == 1


def test_lru_hit_refreshes_recency():
    """A cache hit must move the entry to the MRU end: with capacity 2,
    touching //a before inserting //c must evict //b, not //a."""
    db, _ = small_database(seed=1)
    session = db.session(cache_size=2)
    session.prepare("//a", doc="d")
    session.prepare("//b", doc="d")
    session.prepare("//a", doc="d")  # refresh //a
    session.prepare("//c", doc="d")  # must evict //b, the true LRU
    compiles = session.compiles
    session.prepare("//a", doc="d")
    assert session.compiles == compiles  # //a survived
    session.prepare("//b", doc="d")
    assert session.compiles == compiles + 1  # //b was the victim


def test_lru_evicts_on_insert_not_on_lookup():
    """A lookup (hit or miss before compilation) never shrinks the
    cache; only inserting a new entry over capacity evicts — and exactly
    one victim per insert."""
    db, _ = small_database(seed=1)
    session = db.session(cache_size=2)
    session.prepare("//a", doc="d")
    session.prepare("//b", doc="d")
    assert session.cached_plans == 2
    session.prepare("//a", doc="d")  # hit: no eviction
    session.prepare("//b", doc="d")  # hit: no eviction
    assert session.cached_plans == 2
    session.prepare("//c", doc="d")  # one insert, one victim
    assert session.cached_plans == 2


def test_lru_counter_accounting_order():
    """hits + misses == lookups, compiles == misses, and a re-prepared
    victim counts as a fresh miss (never a phantom hit)."""
    db, _ = small_database(seed=1)
    session = db.session(cache_size=2)
    for query in ("//a", "//b", "//c", "//a", "//c", "//c"):
        session.prepare(query, doc="d")
    # //a, //b, //c compile; //a was evicted by //c so recompiles; the
    # final two //c lookups hit
    assert session.compiles == 4
    assert session.cache_misses == 4
    assert session.cache_hits == 2
    assert session.cache_hits + session.cache_misses == 6


def test_clear_cache_forces_recompile():
    db, _ = small_database(seed=1)
    session = db.session()
    session.execute("//a", doc="d")
    session.clear_cache()
    session.execute("//a", doc="d")
    assert session.compiles == 2


# ------------------------------------------------------- warm vs cold runs


def test_cold_session_runs_are_identical():
    db, _ = small_database(seed=2)
    session = db.session()
    a = session.execute("count(//b)", doc="d", plan="xschedule")
    b = session.execute("count(//b)", doc="d", plan="xschedule")
    assert a.total_time == b.total_time
    assert a.stats.as_dict() == b.stats.as_dict()


def test_warm_session_timing_monotonicity():
    db, _ = small_database(seed=2)
    cold = db.session().execute("count(//b)", doc="d", plan="simple")
    warm = db.session(warm=True)
    first = warm.execute("count(//b)", doc="d", plan="simple")
    second = warm.execute("count(//b)", doc="d", plan="simple")
    assert second.value == first.value == cold.value
    # the first warm run IS the cold run; the second reuses the buffer
    assert first.total_time == pytest.approx(cold.total_time)
    assert second.total_time < first.total_time
    assert second.io_wait <= first.io_wait
    assert second.stats.pages_read <= first.stats.pages_read


def test_warm_session_buffer_survives_across_queries():
    db, _ = small_database(seed=3)
    warm = db.session(warm=True)
    warm.execute("//a", doc="d", plan="simple")
    second = warm.execute("//a/b", doc="d", plan="simple")
    cold = db.session().execute("//a/b", doc="d", plan="simple")
    assert second.total_time < cold.total_time


def test_cool_discards_warm_runtime():
    db, _ = small_database(seed=3)
    warm = db.session(warm=True)
    first = warm.execute("count(//b)", doc="d", plan="simple")
    warm.cool()
    again = warm.execute("count(//b)", doc="d", plan="simple")
    assert again.total_time == pytest.approx(first.total_time)
    assert again.stats.pages_read == first.stats.pages_read


# ------------------------------------------------------------ aggregation


def test_session_aggregates_runs_and_time():
    db, _ = small_database(seed=4)
    session = db.session()
    results = [session.execute(q, doc="d") for q in ("//a", "//b", "count(//c)")]
    assert session.runs == 3
    assert session.total_time == pytest.approx(sum(r.total_time for r in results))
    assert session.io_wait == pytest.approx(sum(r.io_wait for r in results))


def test_session_stats_equal_merged_per_run_stats_warm_and_cold():
    for warm in (False, True):
        db, _ = small_database(seed=5)
        session = db.session(warm=warm)
        merged = Stats()
        for query in ("//a", "//a", "//b/c", "count(//d)"):
            merged.merge(session.execute(query, doc="d").stats)
        assert session.stats.as_dict() == merged.as_dict(), f"warm={warm}"
