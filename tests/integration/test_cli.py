"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


@pytest.fixture()
def xml_file(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text("<shop><item id='1'>widget</item><item id='2'>gadget</item></shop>")
    return str(path)


def test_count_query(xml_file, capsys):
    assert main(["--xml", xml_file, "count(//item)"]) == 0
    out = capsys.readouterr().out
    assert "value = 2" in out
    assert "document:" in out


def test_node_query_shows_nodes(xml_file, capsys):
    assert main(["--xml", xml_file, "//item/text()"]) == 0
    out = capsys.readouterr().out
    assert "2 nodes" in out
    assert "widget" in out


def test_compare_runs_all_plans(xml_file, capsys):
    assert main(["--xml", xml_file, "--compare", "count(//item)"]) == 0
    out = capsys.readouterr().out
    for plan in ("simple", "xschedule", "xscan"):
        assert plan in out


def test_explain(xml_file, capsys):
    assert main(["--xml", xml_file, "--explain", "--plan", "xschedule", "//item"]) == 0
    out = capsys.readouterr().out
    assert "XAssembly" in out
    assert "XSchedule" in out


def test_explain_simple_plan(xml_file, capsys):
    assert main(["--xml", xml_file, "--explain", "--plan", "simple", "//item[.]"]) == 0
    out = capsys.readouterr().out
    assert "UnnestMap" in out


def test_xmark_generation(capsys):
    assert main(["--xmark", "0.01", "count(/site)"]) == 0
    out = capsys.readouterr().out
    assert "value = 1" in out


def test_missing_file_reports_error(capsys):
    assert main(["--xml", "/nonexistent.xml", "count(//a)"]) == 1
    assert "error:" in capsys.readouterr().err


def test_bad_query_reports_error_per_plan(xml_file, capsys):
    assert main(["--xml", xml_file, "--plan", "xschedule", "//item[foo]"]) == 0
    out = capsys.readouterr().out
    assert "error:" in out  # predicates rejected by cost-sensitive plans


def test_parser_requires_source():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["count(//a)"])


def test_repeat_exercises_plan_cache(xml_file, capsys):
    assert main(["--xml", xml_file, "--repeat", "3", "count(//item)"]) == 0
    out = capsys.readouterr().out
    assert "run 1/3" in out
    assert "run 3/3" in out
    assert out.count("[plan cache hit]") == 2
    assert out.count("[compiled]") == 1
    assert "aggregate:" in out
    assert "1 compiles, 2 cache hits" in out
    assert "cold runs" in out


def test_repeat_warm_reuses_buffer(xml_file, capsys):
    assert main(["--xml", xml_file, "--repeat", "2", "--warm", "count(//item)"]) == 0
    out = capsys.readouterr().out
    assert "warm runs" in out
    run_lines = [line for line in out.splitlines() if "run " in line]
    assert len(run_lines) == 2
    # the warm second run reads no pages: the buffer kept the document
    assert "pages=     0" in run_lines[1]


def test_repeat_rejects_nonpositive(xml_file, capsys):
    assert main(["--xml", xml_file, "--repeat", "0", "count(//item)"]) == 1
    assert "--repeat" in capsys.readouterr().err


def test_save_and_reopen_store(xml_file, tmp_path, capsys):
    store_path = str(tmp_path / "s.rpro")
    assert main(["--xml", xml_file, "--save", store_path, "count(//item)"]) == 0
    assert "store saved" in capsys.readouterr().out
    assert main(["--store", store_path, "count(//item)"]) == 0
    assert "value = 2" in capsys.readouterr().out
