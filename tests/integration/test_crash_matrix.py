"""Kill-and-recover matrix: crash at every injection point, recover,
compare against the no-crash oracle.

A fixed mixed workload (inserts, subtree deletes, value updates, with
auto-checkpoints folding the log mid-run) executes under a
:class:`~repro.sim.faults.CrashPoint` for every step the durability
subsystem announces — WAL appends (torn mid-entry), checkpoint page
writes (torn mid-image), the checkpoint temp/rename steps, log resets,
and mid-operation deaths inside the update module itself.  After each
simulated death the store is recovered and must match the oracle's
state after the same acknowledged prefix *exactly*: document bytes,
synopsis rows, page count, and query answers.

The CI crash-recovery job runs this module under several seeds
(``REPRO_CRASH_SEED``); locally it runs with the shipped seed.
"""

import os

import pytest

from repro import Database, ImportOptions
from repro.errors import SimulatedCrashError
from repro.model.tree import Kind
from repro.sim.faults import CRASH_STEPS, CrashInjector, CrashPoint
from repro.storage.store import check_document, export_tree
from repro.storage.wal import recover_store
from repro.xml.escape import serialize

SEED = int(os.environ.get("REPRO_CRASH_SEED", "1"))
LAYOUTS = (0.0, 1.0)  # document-order vs. fully dispersed clustering
QUERIES = ("count(//sec)", "count(//a)", "count(//c)")
CHECKPOINT_EVERY = 5


def make_xml(n=16):
    parts = ["<root>"]
    for i in range(n):
        parts.append(f"<sec><a>t{i}</a><b><c>x{i}</c></b></sec>")
    parts.append("</root>")
    return "".join(parts)


def build_db(fragmentation):
    db = Database(page_size=512, buffer_pages=64)
    db.load_xml(
        make_xml(),
        "d",
        ImportOptions(page_size=512, fragmentation=fragmentation, seed=SEED),
    )
    return db


def make_ops(db):
    """The fixed workload: 12 closures, each one logged operation.

    Targets are resolved by *query at execution time*, not pre-resolved:
    the space manager may relocate records when an insert lands on a
    full page (documented NodeID invalidation), and a stale handle would
    make the workload non-deterministic across acknowledged prefixes.
    """
    wal = db.wal

    def node(query, index=0):
        return db.execute(query, doc="d", plan="simple").nodes[index]

    def text(value):
        for nid in db.execute("//a/text()", doc="d", plan="simple").nodes:
            if db.node_info(nid)[2] == value:
                return nid
        raise AssertionError(f"no text node with value {value!r}")

    return [
        lambda: wal.insert("d", node("/root"), 0, "w0"),
        lambda: wal.set_value("d", text("t0"), "u0"),
        lambda: wal.insert("d", node("/root/sec"), 0, "w1"),
        lambda: wal.delete("d", node("/root/sec", 1)),
        lambda: wal.insert(
            "d", node("//w0"), 0, "ignored", kind=Kind.TEXT, value="tv"
        ),
        lambda: wal.set_value("d", text("t2"), "m2"),
        lambda: wal.delete("d", node("/root/sec", 2)),
        lambda: wal.insert("d", node("/root"), 0, "w3"),
        lambda: wal.delete("d", node("//w1")),
        lambda: wal.set_value("d", text("t4"), "z"),
        lambda: wal.insert("d", node("/root/sec", 3), 1, "w4"),
        lambda: wal.delete("d", node("/root/sec", 4)),
    ]


def snapshot(db):
    doc = db.store.document("d")
    answers = tuple(
        db.execute(query, doc="d", plan="simple").value for query in QUERIES
    )
    return {
        "xml": serialize(export_tree(db.store, doc)),
        "synopsis": doc.synopsis,
        "n_pages": db.store.segment.n_pages,
        "answers": answers,
    }


@pytest.fixture(scope="module", params=LAYOUTS, ids=lambda f: f"layout{f}")
def oracle(request, tmp_path_factory):
    """Per-layout ground truth: state after every acknowledged prefix."""
    fragmentation = request.param
    tmp = tmp_path_factory.mktemp(f"oracle{fragmentation}")
    db = build_db(fragmentation)
    db.attach_wal(str(tmp / "store.rpro"), checkpoint_every=CHECKPOINT_EVERY)
    snapshots = [snapshot(db)]
    for op in make_ops(db):
        op()
        snapshots.append(snapshot(db))
    # count how often each crash step occurs in a full run, with a probe
    # injector armed out of reach (its counters see every announcement)
    probe = build_db(fragmentation)
    injector = CrashInjector(CrashPoint(step=CRASH_STEPS[0], at=10**9))
    probe.attach_wal(
        str(tmp / "probe.rpro"),
        checkpoint_every=CHECKPOINT_EVERY,
        crash=injector,
    )
    for op in make_ops(probe):
        op()
    occurrences = {step: injector.occurrences(step) for step in CRASH_STEPS}
    return fragmentation, snapshots, occurrences


def crash_schedule(occurrences):
    """(step, at) pairs to sweep: first, second, middle and last
    occurrence of every step that fires at all."""
    pairs = []
    for step in CRASH_STEPS:
        total = occurrences[step]
        for at in sorted({1, 2, total // 2, total} & set(range(1, total + 1))):
            pairs.append((step, at))
    return pairs


def test_every_crash_point_recovers(oracle, tmp_path):
    fragmentation, snapshots, occurrences = oracle
    schedule = crash_schedule(occurrences)
    assert len(schedule) >= 10  # the sweep is real, not degenerate
    for step, at in schedule:
        label = f"{step}@{at} (layout {fragmentation}, seed {SEED})"
        path = str(tmp_path / f"{step}-{at}.rpro")
        db = build_db(fragmentation)
        db.attach_wal(
            path,
            checkpoint_every=CHECKPOINT_EVERY,
            crash=CrashInjector(CrashPoint(step=step, at=at, torn_fraction=0.5)),
        )
        acked = 0
        try:
            for op in make_ops(db):
                op()
                acked += 1
        except SimulatedCrashError:
            pass
        else:
            pytest.fail(f"{label}: crash point never fired")

        store, report = recover_store(path)
        # durability floor: every acknowledged operation survived
        assert report.last_lsn >= acked, f"{label}: lost acknowledged ops"
        assert report.last_lsn <= len(snapshots) - 1

        doc = store.document("d")
        check_document(store, doc)
        want = snapshots[report.last_lsn]
        assert serialize(export_tree(store, doc)) == want["xml"], label
        assert doc.synopsis == want["synopsis"], label
        assert store.segment.n_pages == want["n_pages"], label
        recovered = Database(page_size=512, buffer_pages=64, store=store)
        got = tuple(
            recovered.execute(query, doc="d", plan="simple").value
            for query in QUERIES
        )
        assert got == want["answers"], label


def test_recovered_database_resumes_durable_operation(oracle, tmp_path):
    """Recover, re-attach, keep updating, crash again, recover again."""
    fragmentation, snapshots, occurrences = oracle
    path = str(tmp_path / "resume.rpro")
    db = build_db(fragmentation)
    db.attach_wal(
        path,
        checkpoint_every=CHECKPOINT_EVERY,
        crash=CrashInjector(CrashPoint(step="wal-append", at=7)),
    )
    try:
        for op in make_ops(db):
            op()
    except SimulatedCrashError:
        pass
    recovered, report = Database.recover(path)
    recovered.attach_wal(path, checkpoint_every=CHECKPOINT_EVERY)
    root = recovered.execute("/root", doc="d", plan="simple").nodes[0]
    recovered.wal.insert("d", root, 0, "resumed")
    store, second = recover_store(path)
    # attach_wal checkpointed at the recovered LSN; the new op follows it
    assert second.checkpoint_lsn == report.last_lsn
    assert second.last_lsn == report.last_lsn + 1
    check_document(store, store.document("d"))


def test_crash_free_run_with_injector_matches_oracle(oracle, tmp_path):
    """An injector that never fires must not perturb the run at all."""
    fragmentation, snapshots, occurrences = oracle
    path = str(tmp_path / "inert.rpro")
    db = build_db(fragmentation)
    db.attach_wal(
        path,
        checkpoint_every=CHECKPOINT_EVERY,
        crash=CrashInjector(CrashPoint(step="wal-append", at=10**9)),
    )
    for op in make_ops(db):
        op()
    assert snapshot(db) == snapshots[-1]
