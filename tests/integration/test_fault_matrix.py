"""Fault matrix: every plan returns correct results under every profile.

The CI fault-injection job runs this module under several fault seeds
(``REPRO_FAULT_SEED``); locally it runs with the shipped seeds.
"""

import dataclasses
import os

import pytest

from repro import PROFILES, Database, ImportOptions
from repro.xmark import generate_xmark

SEED = int(os.environ.get("REPRO_FAULT_SEED", "1"))
FAULTY_PROFILES = tuple(name for name in PROFILES if name != "none")
PLANS = ("simple", "xschedule", "xscan")
QUERIES = (
    "count(/site/regions//item)",
    "/site/people/person/name",
    "count(//keyword)",
)


@pytest.fixture(scope="module")
def fault_store():
    """One imported XMark document shared by every faulty database."""
    db = Database(page_size=2048, buffer_pages=96)
    tree = generate_xmark(scale=0.03, tags=db.tags, seed=3)
    db.add_tree(
        tree, "xmark", ImportOptions(page_size=2048, fragmentation=1.0, seed=3)
    )
    return db.store


@pytest.fixture(scope="module")
def baseline(fault_store):
    """Fault-free simple-plan answers: the ground truth for the matrix."""
    db = Database(page_size=2048, buffer_pages=96, store=fault_store)
    return {
        query: _answer(db.execute(query, doc="xmark", plan="simple"))
        for query in QUERIES
    }


def _answer(result):
    return (result.value, result.nodes)


def _faulty_db(store, profile_name):
    profile = dataclasses.replace(PROFILES[profile_name], seed=SEED)
    return Database(page_size=2048, buffer_pages=96, store=store, faults=profile)


@pytest.mark.parametrize("plan", PLANS)
@pytest.mark.parametrize("profile_name", FAULTY_PROFILES)
def test_results_survive_faults(fault_store, baseline, profile_name, plan):
    db = _faulty_db(fault_store, profile_name)
    for query in QUERIES:
        result = db.execute(query, doc="xmark", plan=plan)
        assert _answer(result) == baseline[query], (
            f"{plan} under {profile_name!r} (seed {SEED}) got a wrong "
            f"answer for {query!r}"
        )


def test_mixed_profile_actually_injects(fault_store):
    """Guard against a silently inert fault layer."""
    db = _faulty_db(fault_store, "mixed")
    result = db.execute(QUERIES[0], doc="xmark", plan="xschedule")
    stats = result.stats
    assert stats.io_errors + stats.timeouts + stats.slow_services > 0
    # recovery is honestly billed on the simulated clock
    if stats.retries:
        assert stats.backoff_wait > 0.0


@pytest.mark.parametrize("profile_name", FAULTY_PROFILES)
def test_same_seed_same_run(fault_store, profile_name):
    """Determinism regression: one FaultPlan seed fixes the whole run."""
    snapshots = []
    for _ in range(2):
        db = _faulty_db(fault_store, profile_name)
        result = db.execute(QUERIES[0], doc="xmark", plan="xschedule")
        snapshots.append(
            (result.value, result.total_time, result.stats.as_dict())
        )
    assert snapshots[0] == snapshots[1]
