"""Recovery accounting: no double counting across retry → sideline →
fallback recovery.

A page that exhausts its async retries, is sidelined, fails one
synchronous recovery round and finally recovers on the second must be

* charged ONCE against ``ExecutionBudget.max_pages`` (the budget meters
  logical reads, not the 13 physical service attempts recovery took), and
* reported ONCE in the :class:`~repro.algebra.context.DegradationReport`
  (the async failure and each sync round all observe the same dead page).
"""

import pytest

from repro import Database, EvalOptions, ExecutionBudget, FaultProfile, PROFILES, Tracer
from repro.errors import BudgetExceededError
from tests.conftest import small_database

QUERY = "//b//c"


def _twin(db, faults=None, tracer=None):
    return Database(
        page_size=db.store.segment.page_size,
        buffer_pages=db.buffer_pages,
        store=db.store,
        faults=faults,
        tracer=tracer,
    )


def _visited_pages(db):
    """Pages the clean xschedule run physically services, via the tracer."""
    tracer = Tracer()
    traced = _twin(db, tracer=tracer)
    result = traced.execute(QUERY, doc="d", plan="xschedule")
    return result, sorted(tracer.summary().cluster_reads)


def test_recovered_dead_page_charged_and_reported_once():
    db, _ = small_database(seed=21)
    clean, pages = _visited_pages(db)
    assert len(pages) > 2, "document too small to stage a mid-plan failure"
    root_page = pages[0]
    dead = next(p for p in reversed(pages) if p != root_page)

    # 12 dead services: async attempts 1-5 fail (initial + 4 retries),
    # sync recovery round one (6-10) fails, round two (11-13) succeeds
    faults = FaultProfile(
        name="dead-then-recovers", dead_pages=frozenset({dead}), dead_services=12
    )
    # headroom of 4 logical reads over the clean run: enough for the
    # recovery re-requests, nowhere near the 12 extra *physical* attempts
    budget = ExecutionBudget(
        max_pages=clean.stats.pages_requested + 4, on_exceeded="raise"
    )
    faulty = _twin(db, faults=faults)
    result = faulty.execute(
        QUERY, doc="d", plan="xschedule", options=EvalOptions(budget=budget)
    )

    assert set(result.nodes) == set(clean.nodes)  # degraded, never wrong
    assert result.stats.pages_read > result.stats.pages_requested
    assert result.degraded
    dead_events = [e for e in result.degradation.events if e.reason == "dead-page"]
    assert len(dead_events) == 1, dead_events
    assert dead_events[0].page == dead
    assert result.stats.fallbacks == 1


def test_transient_retry_storm_does_not_eat_the_page_budget():
    """Under transient errors every page costs several physical attempts;
    a budget sized to the *logical* footprint must still hold."""
    db, _ = small_database(seed=22)
    clean = db.execute(QUERY, doc="d", plan="xschedule")
    faulty = _twin(db, faults=PROFILES["transient-errors"])
    budget = ExecutionBudget(max_pages=clean.stats.pages_requested, on_exceeded="raise")
    result = faulty.execute(
        QUERY, doc="d", plan="xschedule", options=EvalOptions(budget=budget)
    )
    assert set(result.nodes) == set(clean.nodes)
    assert result.stats.retries > 0
    assert result.stats.pages_read > result.stats.pages_requested
    assert result.stats.pages_requested <= clean.stats.pages_requested


def test_physical_metering_would_have_tripped():
    """Sanity for the scenario above: the old physical metering would
    blow the same budget — pinning that this test can catch a regression
    to double counting."""
    db, _ = small_database(seed=22)
    clean = db.execute(QUERY, doc="d", plan="xschedule")
    faulty = _twin(db, faults=PROFILES["transient-errors"])
    result = faulty.execute(QUERY, doc="d", plan="xschedule")
    # the physical dimension really does exceed the logical budget line
    assert result.stats.pages_read > clean.stats.pages_requested
