"""Plan equivalence: every physical plan agrees with the logical reference.

This is the central correctness theorem of the reproduction: Simple,
XSchedule (with and without speculation), XScan, the rewrite variants and
the fallback paths must produce identical result sets, and the ordered
plans must produce identical document-ordered sequences.
"""

import pytest

from repro import Database, EvalOptions, ImportOptions
from repro.xpath.parser import parse_path
from repro.xpath.reference import evaluate_path

from tests.conftest import make_random_tree, small_database

PATHS = [
    "/root/a",
    "//b",
    "/root//c/d",
    "//a//b",
    "/root/a/b/c",
    "//e/text()",
    "//c/ancestor::a",
    "//d/parent::*",
    "//b/following-sibling::c",
    "//c/preceding-sibling::*",
    "//a/@id",
    "//b/descendant-or-self::d",
    "/root/*/*",
    "//a/..",
    "//*/self::d",
    "//b/ancestor-or-self::*",
]


def expected_for(db, tree, query):
    ir = db.document("d").import_result
    return [ir.nodeid_of(n) for n in evaluate_path(tree, parse_path(query))]


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("query", PATHS)
def test_all_plans_match_reference(seed, query):
    db, tree = small_database(seed=seed)
    expected = expected_for(db, tree, query)
    for plan in ("simple", "xschedule", "xscan"):
        result = db.execute(query, doc="d", plan=plan)
        assert result.nodes == expected, f"{plan} diverged on {query!r}"


@pytest.mark.parametrize("query", PATHS[:8])
def test_speculative_xschedule_matches(query):
    db, tree = small_database(seed=4)
    expected = expected_for(db, tree, query)
    result = db.execute(
        query, doc="d", plan="xschedule", options=EvalOptions(speculative=True, k_min_queue=4)
    )
    assert result.nodes == expected


@pytest.mark.parametrize("query", PATHS[:8])
@pytest.mark.parametrize("plan", ["xschedule", "xscan"])
def test_fallback_mode_matches(query, plan):
    db, tree = small_database(seed=5)
    expected = expected_for(db, tree, query)
    result = db.execute(
        query,
        doc="d",
        plan=plan,
        options=EvalOptions(speculative=True, memory_limit=2, k_min_queue=3),
    )
    assert sorted(result.nodes) == sorted(expected)


@pytest.mark.parametrize("query", PATHS[:6])
def test_rewrite_off_and_descendant_root_opt_match(query):
    db, tree = small_database(seed=6)
    expected = expected_for(db, tree, query)
    for plan in ("xschedule", "xscan"):
        result = db.execute(
            query,
            doc="d",
            plan=plan,
            options=EvalOptions(rewrite_descendant=False, descendant_root_opt=True),
        )
        assert result.nodes == expected


def test_tiny_queue_still_correct():
    db, tree = small_database(seed=7)
    for query in PATHS[:6]:
        expected = expected_for(db, tree, query)
        result = db.execute(
            query, doc="d", plan="xschedule", options=EvalOptions(k_min_queue=1)
        )
        assert result.nodes == expected


@pytest.mark.parametrize("seed", [0, 1])
def test_run_batch_matches_sequential_execute(seed):
    """Batched execution (shared scan + interleaving) agrees with the
    reference on every path, query by query."""
    db, tree = small_database(seed=seed)
    outcome = db.run_batch(PATHS, doc="d")
    assert len(outcome.results) == len(PATHS)
    for query, result in zip(PATHS, outcome.results):
        assert result.nodes == expected_for(db, tree, query), f"batch diverged on {query!r}"


def test_run_batch_interleaved_matches_sequential_execute():
    db, tree = small_database(seed=2)
    outcome = db.run_batch([(q, "d", "xschedule") for q in PATHS[:8]])
    assert outcome.interleaved == len(PATHS[:8])
    for query, result in zip(PATHS[:8], outcome.results):
        assert result.nodes == expected_for(db, tree, query), f"interleave diverged on {query!r}"


def test_fragmented_layout_matches_clean_layout():
    db_clean = Database(page_size=512, buffer_pages=64)
    tree = make_random_tree(db_clean.tags, seed=8)
    db_clean.add_tree(tree, "d", ImportOptions(page_size=512, fragmentation=0.0))

    db_frag = Database(page_size=512, buffer_pages=64)
    tree_frag = make_random_tree(db_frag.tags, seed=8)
    db_frag.add_tree(tree_frag, "d", ImportOptions(page_size=512, fragmentation=1.0, seed=1))

    for query in PATHS[:8]:
        clean = db_clean.execute(query, doc="d", plan="xscan")
        frag = db_frag.execute(query, doc="d", plan="xscan")
        assert len(clean.nodes) == len(frag.nodes), query


def _first_child_exile_database():
    """Document whose layout exiles several *first* children into their
    own clusters.

    That shape is the regression trigger for the ``//``-prefix
    optimisation: XScan speculates a sibling entry at every up-border,
    and an implicitly-proven step-1 junction would emit the exiled first
    child as a following-sibling result even though it has no preceding
    sibling at all.
    """
    import random

    from repro.model.builder import TreeBuilder

    rng = random.Random(0)
    db = Database(page_size=512, buffer_pages=48)
    builder = TreeBuilder(db.tags)
    builder.start_element("root")

    def gen(depth):
        builder.start_element(rng.choice("abc"))
        for _ in range(rng.randrange(4) if depth < 5 else 0):
            if rng.random() < 0.25:
                builder.text("t" * rng.randrange(1, 10))
            else:
                gen(depth + 1)
        builder.end_element()

    for _ in range(rng.randrange(10, 40)):
        gen(0)
    builder.end_element()
    tree = builder.finish()
    db.add_tree(tree, "d", ImportOptions(page_size=512, fragmentation=0.0, seed=0))
    return db, tree


@pytest.mark.parametrize(
    "query",
    [
        "/descendant-or-self::node()/following-sibling::a",
        "/descendant-or-self::node()/preceding-sibling::b",
    ],
)
@pytest.mark.parametrize("speculative", [False, True])
def test_sibling_step_after_descendant_prefix_matches(query, speculative):
    db, tree = _first_child_exile_database()
    expected = expected_for(db, tree, query)
    options = EvalOptions(speculative=speculative, k_min_queue=4)
    for plan in ("simple", "xschedule", "xscan"):
        result = db.execute(query, doc="d", plan=plan, options=options)
        assert result.nodes == expected, f"{plan} diverged on {query!r}"
