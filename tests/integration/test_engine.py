"""End-to-end engine tests."""

import pytest

from repro import Database, EvalOptions, ImportOptions, ReproError
from repro.sim.disk import DiskGeometry, SchedulingPolicy
from repro.xpath.compile import PlanKind


def make_db():
    db = Database(page_size=512, buffer_pages=32)
    db.load_xml(
        "<site><a><b>one</b><b>two</b></a><a><b>three</b></a><c/></site>", "d"
    )
    return db


def test_load_xml_and_count():
    db = make_db()
    result = db.execute("count(//b)", doc="d")
    assert result.value == 3.0
    assert result.nodes is None


def test_node_query_returns_document_order():
    db = make_db()
    result = db.execute("//b", doc="d", plan="simple")
    values = [db.node_info(n) for n in result.nodes]
    assert [v[1] for v in values] == ["b", "b", "b"]
    texts = db.execute("//b/text()", doc="d", plan="simple")
    assert [db.node_info(n)[2] for n in texts.nodes] == ["one", "two", "three"]


def test_result_accounting_consistent():
    db = make_db()
    result = db.execute("count(//b)", doc="d", plan="xschedule")
    assert result.total_time == pytest.approx(result.cpu_time + result.io_wait)
    assert result.total_time > 0
    assert 0 < result.cpu_fraction <= 1
    assert result.stats.pages_read >= 1


def test_node_count_guard():
    db = make_db()
    result = db.execute("count(//b)", doc="d")
    with pytest.raises(ReproError):
        result.node_count


def test_root_query():
    db = make_db()
    result = db.execute("/", doc="d", plan="simple")
    assert len(result.nodes) == 1
    assert db.node_info(result.nodes[0])[0] == "DOCUMENT"
    for plan in ("xschedule", "xscan"):
        assert len(db.execute("/", doc="d", plan=plan).nodes) == 1


def test_empty_result():
    db = make_db()
    for plan in ("simple", "xschedule", "xscan"):
        result = db.execute("//missing", doc="d", plan=plan)
        assert result.nodes == []


def test_warm_context_reuses_buffer():
    db = make_db()
    ctx = db.make_context()
    first = db.execute("count(//b)", doc="d", plan="simple", context=ctx)
    second = db.execute("count(//b)", doc="d", plan="simple", context=ctx)
    assert second.value == first.value
    assert second.io_wait < first.io_wait or second.io_wait == 0.0
    assert second.total_time < first.total_time


def test_cold_runs_are_deterministic():
    db = make_db()
    a = db.execute("count(//b)", doc="d", plan="xschedule")
    b = db.execute("count(//b)", doc="d", plan="xschedule")
    assert a.total_time == b.total_time
    assert a.stats.as_dict() == b.stats.as_dict()


def test_multiple_documents():
    db = Database(page_size=512, buffer_pages=32)
    db.load_xml("<a><x/></a>", "one")
    db.load_xml("<a><x/><x/></a>", "two")
    assert db.execute("count(//x)", doc="one").value == 1.0
    assert db.execute("count(//x)", doc="two").value == 2.0


def test_disk_policy_configurable():
    db = Database(page_size=512, buffer_pages=32, disk_policy=SchedulingPolicy.FIFO)
    db.load_xml("<a><b/><b/></a>", "d")
    assert db.execute("count(//b)", doc="d", plan="xschedule").value == 2.0


def test_geometry_page_size_mismatch_rejected():
    with pytest.raises(ReproError):
        Database(page_size=512, geometry=DiskGeometry(page_size=8192))


def test_prepare_then_inspect_plan():
    db = make_db()
    compiled = db.prepare("count(//b)", doc="d", plan="xscan")
    assert compiled.plan_kinds == [PlanKind.XSCAN]


def test_builder_shares_tag_dictionary():
    db = Database(page_size=512, buffer_pages=8)
    builder = db.builder()
    builder.start_element("a")
    builder.end_element()
    db.add_tree(builder.finish(), "d")
    assert db.execute("count(/a)", doc="d").value == 1.0
