"""The paper's three benchmark queries end-to-end on an XMark database."""

import pytest

from repro import EvalOptions
from repro.xmark import PAPER_QUERIES, Q6_PRIME, Q7, Q15
from repro.xpath.reference import evaluate_query

PLANS = ("simple", "xschedule", "xscan")


@pytest.fixture(scope="module")
def reference(xmark_small):
    _, tree = xmark_small
    out = {}
    for exp_id, _, query in PAPER_QUERIES:
        value = evaluate_query(tree, query)
        out[exp_id] = value if isinstance(value, float) else float(len(value))
    return out


@pytest.mark.parametrize("plan", PLANS)
@pytest.mark.parametrize("exp_id,label,query", PAPER_QUERIES)
def test_query_correct_on_all_plans(xmark_small, reference, plan, exp_id, label, query):
    db, _ = xmark_small
    result = db.execute(query, doc="xmark", plan=plan)
    got = result.value if result.value is not None else float(len(result.nodes))
    assert got == reference[exp_id]


def test_q6_counts_items_in_regions_only(xmark_small, reference):
    db, tree = xmark_small
    total_items = evaluate_query(tree, "count(//item)")
    assert reference["q6"] == total_items  # all items live under regions


def test_q7_is_sum_of_three_counts(xmark_small):
    db, _ = xmark_small
    result = db.execute(Q7, doc="xmark", plan="xschedule")
    parts = [
        db.execute(f"count(/site//{tag})", doc="xmark", plan="xschedule").value
        for tag in ("description", "annotation", "emailaddress")
    ]
    assert result.value == sum(parts)
    assert len(result.plan_kinds) == 3


def test_q15_returns_text_nodes(xmark_small):
    db, _ = xmark_small
    result = db.execute(Q15, doc="xmark", plan="xschedule")
    assert result.nodes, "Q15 must be non-empty at this scale"
    for nid in result.nodes[:5]:
        kind, tag, value = db.node_info(nid)
        assert kind == "TEXT"
        assert value


@pytest.mark.parametrize("exp_id,label,query", PAPER_QUERIES)
def test_speculative_and_fallback_agree(xmark_small, reference, exp_id, label, query):
    db, _ = xmark_small
    spec = db.execute(
        query, doc="xmark", plan="xschedule", options=EvalOptions(speculative=True)
    )
    fall = db.execute(
        query,
        doc="xmark",
        plan="xscan",
        options=EvalOptions(memory_limit=16),
    )
    for result in (spec, fall):
        got = result.value if result.value is not None else float(len(result.nodes))
        assert got == reference[exp_id]
    assert fall.stats.fallbacks >= 1  # the tiny limit must actually trip


def test_xscan_reads_every_page_sequentially(xmark_small):
    # the paper's unpruned behaviour, reproduced with the synopsis off
    db, _ = xmark_small
    doc = db.document("xmark")
    result = db.execute(
        Q6_PRIME, doc="xmark", plan="xscan", options=EvalOptions(synopsis=False)
    )
    assert result.stats.pages_read == doc.n_pages
    assert result.stats.sequential_reads == doc.n_pages
    assert result.stats.seeks == 0
    assert result.stats.synopsis_clusters_pruned == 0


def test_xscan_synopsis_prunes_but_preserves_results(xmark_small):
    """On the fixture's fully shuffled layout the cost-aware planner
    streams through the scattered prunable pages (a skip would trade a
    cheap transfer for a seek) but skips their speculation rounds: the
    answer is unchanged and simulated time strictly improves."""
    db, _ = xmark_small
    doc = db.document("xmark")
    pruned = db.execute(Q6_PRIME, doc="xmark", plan="xscan")
    unpruned = db.execute(
        Q6_PRIME, doc="xmark", plan="xscan", options=EvalOptions(synopsis=False)
    )
    assert pruned.value == unpruned.value
    stats = pruned.stats
    assert stats.synopsis_entries_pruned > 0
    assert stats.pages_read + stats.synopsis_clusters_pruned == doc.n_pages
    assert stats.pages_read <= unpruned.stats.pages_read
    assert pruned.total_time < unpruned.total_time


def test_xscan_synopsis_skips_clusters_on_document_order_layout():
    """On a document-order layout the dead regions are contiguous, so
    whole runs of prunable pages clear the skip-scan break-even and are
    never read at all."""
    from repro import Database, ImportOptions
    from repro.xmark import generate_xmark

    db = Database(page_size=2048, buffer_pages=128)
    tree = generate_xmark(scale=0.05, tags=db.tags, seed=3)
    db.add_tree(
        tree, "xmark", ImportOptions(page_size=2048, fragmentation=0.0, seed=3)
    )
    doc = db.document("xmark")
    # a selective child path: the africa region is one contiguous stretch
    # of the document, everything else is provably dead for the scan
    query = "count(/site/regions/africa/item/description/parlist/listitem)"
    pruned = db.execute(query, doc="xmark", plan="xscan")
    unpruned = db.execute(
        query, doc="xmark", plan="xscan", options=EvalOptions(synopsis=False)
    )
    assert pruned.value == unpruned.value
    stats = pruned.stats
    assert stats.synopsis_clusters_pruned > 0
    assert stats.pages_read + stats.synopsis_clusters_pruned == doc.n_pages
    assert stats.pages_read < unpruned.stats.pages_read
    assert pruned.total_time < unpruned.total_time


def test_xschedule_reads_fewer_pages_than_scan_on_selective_query(xmark_small):
    db, _ = xmark_small
    doc = db.document("xmark")
    result = db.execute(Q15, doc="xmark", plan="xschedule")
    assert result.stats.pages_read < doc.n_pages
