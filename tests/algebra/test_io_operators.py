"""Behavioural tests for the I/O-performing operators (XSchedule, XScan)."""

import pytest

from repro import Database, EvalOptions, ImportOptions

from tests.conftest import make_random_tree, small_database
from tests.paper_tree import PAGE_B, build_paper_tree


# ----------------------------------------------------------------- XSchedule


def test_queue_batches_same_cluster_visits():
    """Paused paths targeting one cluster are served in one visit."""
    db, tree = small_database(seed=51, n_top=60, fragmentation=1.0)
    doc = db.document("d")
    result = db.execute("//a//b", doc="d", plan="xschedule")
    # without batching, visits would exceed distinct target events; with
    # Q keyed by cluster, visits stay close to distinct resident loads
    assert result.stats.clusters_visited <= result.stats.pages_read * 3


def test_xschedule_prefers_resident_clusters():
    """A cluster already buffered is processed without new I/O."""
    paper = build_paper_tree()
    result = paper.db.execute("/A//B", doc="paper", plan="xschedule")
    # pages read == clusters visited: nothing read twice, nothing wasted
    assert result.stats.pages_read == result.stats.clusters_visited == 3


def test_xschedule_async_requests_issued_eagerly():
    paper = build_paper_tree()
    result = paper.db.execute("/A//B", doc="paper", plan="xschedule")
    # both discovered crossings (a, c) were submitted asynchronously
    assert result.stats.async_requests >= 2
    assert result.stats.io_requests >= 3


def test_deep_queue_improves_io_time():
    """More outstanding requests => better controller decisions."""
    db, _ = small_database(seed=52, n_top=120, fragmentation=1.0)
    wide = db.execute("//a", doc="d", plan="xschedule")
    # sanity: the run used reordering at all
    assert wide.stats.seeks > 0
    assert wide.io_wait < db.execute("//a", doc="d", plan="simple").io_wait


def test_parked_entries_preserved_across_fallback():
    """Speculative XSchedule parks redundant crossings; if fallback trips,
    the parked entries are revived and no results are lost."""
    db, tree = small_database(seed=53, n_top=80, fragmentation=1.0)
    expected = db.execute("//a//b", doc="d", plan="xschedule").value if False else None
    baseline = db.execute("count(//a//b)", doc="d", plan="xschedule")
    for limit in (1, 3, 10):
        result = db.execute(
            "count(//a//b)",
            doc="d",
            plan="xschedule",
            options=EvalOptions(speculative=True, memory_limit=limit),
        )
        assert result.value == baseline.value, f"limit={limit}"


# --------------------------------------------------------------------- XScan


def test_xscan_visits_clusters_in_physical_order():
    paper = build_paper_tree()
    result = paper.db.execute("/A//B", doc="paper", plan="xscan")
    assert result.stats.sequential_reads == 4
    assert result.stats.seeks == 0


def test_xscan_readahead_overlaps():
    db, _ = small_database(seed=54, n_top=80)
    serial = db.execute("//a", doc="d", plan="xscan", options=EvalOptions(scan_readahead=0))
    ahead = db.execute("//a", doc="d", plan="xscan", options=EvalOptions(scan_readahead=4))
    assert ahead.nodes == serial.nodes
    assert ahead.io_wait < serial.io_wait


def test_xscan_fallback_restarts_producer():
    db, tree = small_database(seed=55, n_top=80)
    baseline = db.execute("count(//a//b)", doc="d", plan="xscan")
    fallback = db.execute(
        "count(//a//b)",
        doc="d",
        plan="xscan",
        options=EvalOptions(memory_limit=1),
    )
    assert fallback.value == baseline.value
    assert fallback.stats.fallbacks == 1
    # the restart re-evaluates with full navigation: extra page reads
    assert fallback.stats.pages_read >= baseline.stats.pages_read


def test_xscan_speculation_covers_multi_document_segments():
    """XScan over one document must not touch another document's pages."""
    db = Database(page_size=512, buffer_pages=64)
    t1 = make_random_tree(db.tags, seed=56, n_top=30)
    t2 = make_random_tree(db.tags, seed=57, n_top=30)
    db.add_tree(t1, "one", ImportOptions(page_size=512))
    db.add_tree(t2, "two", ImportOptions(page_size=512))
    result = db.execute("count(//a)", doc="one", plan="xscan")
    # every page of "one" is either read or provably skipped via the
    # synopsis; none of "two"'s pages are touched either way
    stats = result.stats
    assert stats.pages_read + stats.synopsis_clusters_pruned == db.document("one").n_pages
    assert stats.pages_read == stats.clusters_visited


def test_empty_document_path():
    db = Database(page_size=512, buffer_pages=8)
    db.load_xml("<empty/>", "d")
    for plan in ("simple", "xschedule", "xscan"):
        assert db.execute("count(//anything)", doc="d", plan=plan).value == 0.0
