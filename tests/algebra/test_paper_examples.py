"""The paper's worked examples as executable tests.

* Example 5 / Table 1 — classification of partial path instances.
* Example 6 / Fig. 6 — XSchedule visits clusters d, a, c and never b.
* Example 7 / Fig. 8 — XScan scans a, b, c, d; the two results are
  produced only after the scan reaches cluster d, via speculative
  left-incomplete instances merged in XAssembly.
"""

import pytest

from repro.algebra.pathinstance import PathInstance
from repro.storage.nodeid import page_of
from repro.xpath.compile import PlanKind

from tests.paper_tree import PAGE_A, PAGE_B, PAGE_C, PAGE_D, build_paper_tree

QUERY = "/A//B"


@pytest.fixture()
def paper():
    return build_paper_tree()


def run(paper, plan, **options):
    from repro.algebra.context import EvalOptions

    return paper.db.execute(
        QUERY, doc="paper", plan=plan, options=EvalOptions(**options)
    )


def test_query_results_are_a3_and_c4(paper):
    for plan in ("simple", "xschedule", "xscan"):
        result = run(paper, plan)
        assert sorted(result.nodes) == sorted([paper.nodes["a3"], paper.nodes["c4"]])
        # document order: a3 (under first child) precedes c4
        assert result.nodes == [paper.nodes["a3"], paper.nodes["c4"]]


def test_example6_xschedule_never_visits_cluster_b(paper):
    """Fig. 6: cluster b is never accessed because d4 fails the node test."""
    result = run(paper, "xschedule")
    assert result.stats.pages_read == 3
    assert not paper.db.make_context().buffer.is_resident(PAGE_B)  # fresh ctx sanity
    # b's page was not read: 3 pages for clusters d, a, c
    assert result.stats.clusters_visited == 3


def test_example6_visit_starts_with_context_cluster(paper):
    """Cluster d (the context) is processed first; a and c follow."""
    result = run(paper, "xschedule")
    # the context page is read synchronously or via the queue first;
    # everything else is asynchronous
    assert result.stats.async_requests >= 2


def test_example7_xscan_visits_all_clusters_once(paper):
    result = run(paper, "xscan")
    assert result.stats.clusters_visited == 4
    assert result.stats.pages_read == 4
    assert result.stats.sequential_reads == 4  # a,b,c,d in physical order
    assert result.stats.seeks == 0


def test_example7_speculation_creates_left_incomplete_instances(paper):
    result = run(paper, "xscan")
    # clusters a and c each speculate at their up-border for both steps;
    # cluster b too (its instances die at the node test)
    assert result.stats.speculative_instances >= 4
    assert result.stats.merges >= 2  # a3 and c4 resolved via merging


def test_xschedule_without_speculation_has_no_speculative_instances(paper):
    result = run(paper, "xschedule", speculative=False)
    assert result.stats.speculative_instances == 0


def test_xschedule_with_speculation_single_visit_guarantee(paper):
    result = run(paper, "xschedule", speculative=True)
    assert result.stats.clusters_visited == 3
    assert result.stats.pages_read == 3


# ----------------------------------------------------- Table 1 (Example 5)


def classify(instance: PathInstance, path_len: int) -> str:
    """Render the paper's F/L/R/C flags for a pipeline instance."""
    left_complete = not instance.left_open
    right_complete = not instance.is_border
    complete = left_complete and right_complete
    full = complete and instance.s_l == 0 and instance.s_r == path_len
    return "".join(
        flag if condition else "-"
        for flag, condition in (
            ("F", full),
            ("L", left_complete),
            ("R", right_complete),
            ("C", complete),
        )
    )


def test_table1_classification_flags(paper):
    n = paper.nodes
    path_len = 2
    # row 1: context instance (d1, eps, eps)
    row1 = PathInstance(0, n["d1"], False, 0, 0, False, page_no=PAGE_D)
    assert classify(row1, path_len) == "-LRC"
    # row 4: full instance d1 -> c2 -> c4
    row4 = PathInstance(0, n["d1"], False, 2, 3, False, page_no=PAGE_C)
    assert classify(row4, path_len) == "FLRC"
    # row 6: right-incomplete at border d2 while processing step 1
    row6 = PathInstance(0, n["d1"], False, 0, 1, True, page_no=PAGE_D)
    assert classify(row6, path_len) == "-L--"
    # row 9: left-incomplete starting at border a1, ending at core a3
    row9 = PathInstance(0, n["a1"], True, 2, 2, False, page_no=PAGE_A)
    assert classify(row9, path_len) == "--R-"


def test_auto_plan_on_paper_doc_without_statistics(paper):
    """AUTO degrades to XSchedule when no statistics were collected."""
    result = run(paper, "auto")
    assert result.plan_kinds == [PlanKind.XSCHEDULE]
    assert sorted(result.nodes) == sorted([paper.nodes["a3"], paper.nodes["c4"]])
