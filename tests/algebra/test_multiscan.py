"""Tests for the shared-scan multi-path extension."""

import pytest

from repro.xmark import Q7

from tests.conftest import small_database


@pytest.fixture(scope="module")
def db_tree():
    return small_database(seed=31, n_top=60)


def test_shared_scan_counts_match(db_tree):
    db, _ = db_tree
    query = "count(//a)+count(//b)+count(//c)"
    separate = db.execute(query, doc="d", plan="xscan")
    shared = db.execute(query, doc="d", plan="xscan-shared")
    assert shared.value == separate.value


def test_shared_scan_single_path(db_tree):
    db, _ = db_tree
    separate = db.execute("//a/b", doc="d", plan="xscan")
    shared = db.execute("//a/b", doc="d", plan="xscan-shared")
    assert shared.nodes == separate.nodes


def test_shared_scan_reads_document_once(db_tree):
    db, _ = db_tree
    doc = db.document("d")
    query = "count(//a)+count(//b)+count(//c)"
    separate = db.execute(query, doc="d", plan="xscan")
    shared = db.execute(query, doc="d", plan="xscan-shared")
    # each page is visited once (or skipped via the synopsis) by the
    # shared scan, versus once per path by the separate scans
    assert (
        shared.stats.clusters_visited + shared.stats.synopsis_clusters_pruned
        == doc.n_pages
    )
    assert (
        separate.stats.clusters_visited + separate.stats.synopsis_clusters_pruned
        == 3 * doc.n_pages
    )
    assert shared.stats.pages_read < separate.stats.pages_read


def test_shared_scan_faster_than_separate_scans(db_tree):
    db, _ = db_tree
    query = "count(//a)+count(//b)+count(//c)"
    separate = db.execute(query, doc="d", plan="xscan")
    shared = db.execute(query, doc="d", plan="xscan-shared")
    assert shared.total_time < separate.total_time


def test_shared_scan_on_xmark_q7(xmark_small):
    db, _ = xmark_small
    separate = db.execute(Q7, doc="xmark", plan="xscan")
    shared = db.execute(Q7, doc="xmark", plan="xscan-shared")
    assert shared.value == separate.value
    assert shared.total_time < separate.total_time


def test_shared_scan_plan_kind_reported(db_tree):
    db, _ = db_tree
    shared = db.execute("count(//a)+count(//b)", doc="d", plan="xscan-shared")
    assert all(k.value == "xscan-shared" for k in shared.plan_kinds)
