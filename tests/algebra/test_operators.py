"""Unit tests for individual physical operators."""

import pytest

from repro.algebra.base import Operator
from repro.algebra.misc import (
    ContextScan,
    DuplicateElimination,
    count_results,
    order_results,
    result_nodeids,
)
from repro.algebra.pathinstance import PathInstance
from repro.errors import PlanError
from repro.storage.nodeid import make_nodeid, page_of, slot_of

from tests.paper_tree import PAGE_A, PAGE_D, build_paper_tree


@pytest.fixture()
def paper():
    return build_paper_tree()


class ListSource(Operator):
    """Test helper: replay a fixed list of instances."""

    def __init__(self, ctx, items):
        super().__init__(ctx)
        self.items = items

    def _produce(self):
        yield from self.items


def test_context_scan_emits_trivial_instances(paper):
    ctx = paper.db.make_context()
    scan = ContextScan(ctx, [paper.nodes["d1"], paper.nodes["a2"]])
    scan.open()
    first = scan.next()
    assert (first.s_l, first.s_r) == (0, 0)
    assert not first.left_open and not first.is_border
    assert make_nodeid(first.page_no, first.slot) == paper.nodes["d1"]
    second = scan.next()
    assert make_nodeid(second.page_no, second.slot) == paper.nodes["a2"]
    assert scan.next() is None
    scan.close()


def test_next_before_open_raises(paper):
    ctx = paper.db.make_context()
    scan = ContextScan(ctx, [])
    with pytest.raises(PlanError):
        scan.next()


def test_duplicate_elimination(paper):
    ctx = paper.db.make_context()
    nid = paper.nodes["a3"]
    instance = PathInstance(0, None, False, 1, slot_of(nid), False, page_no=page_of(nid))
    other = paper.nodes["c4"]
    instance2 = PathInstance(0, None, False, 1, slot_of(other), False, page_no=page_of(other))
    source = ListSource(ctx, [instance, instance2, instance])
    dedup = DuplicateElimination(ctx, source)
    assert result_nodeids(dedup) == [nid, other]
    assert ctx.stats.duplicates_suppressed == 1


def test_count_results(paper):
    ctx = paper.db.make_context()
    items = [
        PathInstance(0, None, False, 1, 1, False, page_no=0),
        PathInstance(0, None, False, 1, 2, False, page_no=0),
    ]
    assert count_results(ListSource(ctx, items), ctx) == 2


def test_order_results_uses_ordpaths(paper):
    ctx = paper.db.make_context()
    # c4 comes after a3 in document order regardless of input order
    ordered = order_results(ctx, [paper.nodes["c4"], paper.nodes["a3"]])
    assert ordered == [paper.nodes["a3"], paper.nodes["c4"]]
    # ordering pays swizzles (buffer fixes)
    assert ctx.stats.swizzles >= 2


def test_operator_iterator_protocol(paper):
    ctx = paper.db.make_context()
    items = [PathInstance(0, None, False, 0, 0, False, page_no=PAGE_D)]
    source = ListSource(ctx, items)
    source.open()
    drained = list(source)
    assert len(drained) == 1
    source.close()
    # closing twice is harmless
    source.close()


def test_iterator_call_costs_charged(paper):
    ctx = paper.db.make_context()
    source = ListSource(ctx, [PathInstance(0, None, False, 0, 0, False, page_no=0)] * 10)
    cpu_before = ctx.clock.cpu_time
    count_results(source, ctx)
    assert ctx.clock.cpu_time > cpu_before
