"""Unit tests for the XStep operator's applicability and outputs."""

import pytest

from repro.axes import Axis
from repro.algebra.base import Operator
from repro.algebra.pathinstance import PathInstance
from repro.algebra.steps import CompiledNodeTest, CompiledPredicate, CompiledStep
from repro.algebra.xstep import XStep
from repro.errors import PlanError
from repro.storage.nodeid import make_nodeid, page_of, slot_of

from tests.paper_tree import PAGE_A, PAGE_D, build_paper_tree


class ListSource(Operator):
    def __init__(self, ctx, items):
        super().__init__(ctx)
        self.items = items

    def _produce(self):
        yield from self.items


@pytest.fixture()
def paper():
    return build_paper_tree()


def make_step(paper, axis, name=None, kind="name"):
    tag = paper.db.tags.lookup(name) if name else None
    return CompiledStep(axis, CompiledNodeTest.compile(kind if name or kind != "name" else "name", axis, tag))


def pin(paper, page_no):
    ctx = paper.db.make_context()
    frame = ctx.buffer.fix(page_no)
    ctx.set_current_frame(frame)
    return ctx


def drain(op):
    op.open()
    out = []
    while True:
        item = op.next()
        if item is None:
            op.close()
            return out
        out.append(item)


def test_applicable_instance_extended(paper):
    ctx = pin(paper, PAGE_D)
    d1 = paper.nodes["d1"]
    context = PathInstance(0, d1, False, 0, slot_of(d1), False, page_no=PAGE_D)
    step = make_step(paper, Axis.CHILD, "C")
    out = drain(XStep(ctx, ListSource(ctx, [context]), 1, step))
    # two deferred borders (a, c tested later) + d4 matching C
    borders = [i for i in out if i.is_border]
    cores = [i for i in out if not i.is_border]
    assert len(borders) == 2
    assert len(cores) == 1 and cores[0].s_r == 1
    assert ctx.stats.border_crossings_deferred == 2
    ctx.release()


def test_non_applicable_passes_through(paper):
    ctx = pin(paper, PAGE_D)
    stale = PathInstance(0, None, False, 5, 0, False, page_no=PAGE_D)
    step = make_step(paper, Axis.CHILD, "C")
    out = drain(XStep(ctx, ListSource(ctx, [stale]), 1, step))
    assert out == [stale]
    ctx.release()


def test_paused_instance_not_reprocessed(paper):
    """A border produced by this step is NOT applicable to later steps."""
    ctx = pin(paper, PAGE_D)
    paused = PathInstance(0, None, False, 0, slot_of(paper.nodes["d2"]), True, page_no=PAGE_D)
    step2 = make_step(paper, Axis.CHILD, "B")
    out = drain(XStep(ctx, ListSource(ctx, [paused]), 2, step2))
    assert out == [paused]  # s_r=0 != 1, passes through untouched
    ctx.release()


def test_resumed_instance_processed(paper):
    ctx = pin(paper, PAGE_A)
    resumed = PathInstance(
        0, None, False, 0, slot_of(paper.nodes["a1"]), True, resumed=True, page_no=PAGE_A
    )
    step = make_step(paper, Axis.CHILD, "A")
    out = drain(XStep(ctx, ListSource(ctx, [resumed]), 1, step))
    assert len(out) == 1
    assert not out[0].is_border
    assert make_nodeid(out[0].page_no, out[0].slot) == paper.nodes["a2"]
    ctx.release()


def test_failed_node_test_kills_instance(paper):
    ctx = pin(paper, PAGE_A)
    resumed = PathInstance(
        0, None, False, 0, slot_of(paper.nodes["a1"]), True, resumed=True, page_no=PAGE_A
    )
    step = make_step(paper, Axis.CHILD, "Z", kind="name")  # unknown tag
    out = drain(XStep(ctx, ListSource(ctx, [resumed]), 1, step))
    assert out == []
    ctx.release()


def test_left_open_flag_propagates(paper):
    ctx = pin(paper, PAGE_A)
    speculative = PathInstance(
        1, paper.nodes["a1"], True, 1, slot_of(paper.nodes["a1"]), True,
        resumed=True, page_no=PAGE_A,
    )
    step = make_step(paper, Axis.CHILD, "A")
    out = drain(XStep(ctx, ListSource(ctx, [speculative]), 2, step))
    assert len(out) == 1
    assert out[0].left_open
    assert out[0].n_l == paper.nodes["a1"]
    ctx.release()


def test_predicates_rejected(paper):
    ctx = paper.db.make_context()
    step = make_step(paper, Axis.CHILD, "A")
    step.predicates.append(CompiledPredicate([]))
    with pytest.raises(PlanError):
        XStep(ctx, ListSource(ctx, []), 1, step)


def test_wrong_page_instance_raises(paper):
    ctx = pin(paper, PAGE_D)
    wrong = PathInstance(0, None, False, 0, 0, False, page_no=PAGE_A)
    step = make_step(paper, Axis.CHILD, "A")
    op = XStep(ctx, ListSource(ctx, [wrong]), 1, step)
    op.open()
    with pytest.raises(PlanError):
        op.next()
    ctx.release()
