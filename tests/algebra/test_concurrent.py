"""Tests for concurrent query execution."""

import pytest

from repro import EvalOptions
from repro.algebra.concurrent import run_concurrent
from repro.errors import PlanError

from tests.conftest import small_database


@pytest.fixture(scope="module")
def db_tree():
    return small_database(seed=21, n_top=60)


def test_single_query_matches_solo(db_tree):
    db, _ = db_tree
    solo = db.execute("count(//a)", doc="d", plan="xschedule")
    outcome = run_concurrent(db, [("count(//a)", "d", "xschedule")])
    assert outcome.results[0].value == solo.value
    assert outcome.total_time == pytest.approx(solo.total_time, rel=0.05)


def test_two_queries_correct_answers(db_tree):
    db, _ = db_tree
    expected_a = db.execute("count(//a)", doc="d", plan="xschedule").value
    expected_b = db.execute("count(//b)", doc="d", plan="xschedule").value
    outcome = run_concurrent(
        db,
        [("count(//a)", "d", "xschedule"), ("count(//b)", "d", "xschedule")],
    )
    assert outcome.results[0].value == expected_a
    assert outcome.results[1].value == expected_b
    assert all(r.finished_at <= outcome.total_time for r in outcome.results)


def test_node_queries_in_document_order(db_tree):
    db, _ = db_tree
    solo = db.execute("//a/b", doc="d", plan="xscan")
    outcome = run_concurrent(
        db, [("//a/b", "d", "xscan"), ("count(//c)", "d", "xschedule")]
    )
    assert outcome.results[0].nodes == solo.nodes


def test_mixed_plans(db_tree):
    db, _ = db_tree
    outcome = run_concurrent(
        db,
        [
            ("count(//a)", "d", "simple"),
            ("count(//a)", "d", "xschedule"),
            ("count(//a)", "d", "xscan"),
        ],
    )
    values = {r.value for r in outcome.results}
    assert len(values) == 1


def test_concurrency_beats_serial_cold_runs(db_tree):
    """Shared buffer + deeper disk queue: running together is cheaper
    than the sum of independent cold runs."""
    db, _ = db_tree
    queries = [("count(//a)", "d", "xschedule"), ("count(//b)", "d", "xschedule")]
    serial = sum(db.execute(q, doc=d, plan=p).total_time for q, d, p in queries)
    outcome = run_concurrent(db, queries)
    assert outcome.total_time < serial


def test_cpu_serialises(db_tree):
    """One simulated CPU: concurrent CPU time is the sum of the parts."""
    db, _ = db_tree
    solo_cpu = db.execute("count(//a)", doc="d", plan="xschedule").cpu_time
    outcome = run_concurrent(
        db, [("count(//a)", "d", "xschedule"), ("count(//a)", "d", "xschedule")]
    )
    # second run shares buffered pages but repeats the navigation CPU
    assert outcome.cpu_time > 1.5 * solo_cpu


def test_expression_query_concurrent(db_tree):
    db, _ = db_tree
    solo = db.execute("count(//a) + count(//b)", doc="d", plan="xschedule")
    outcome = run_concurrent(
        db, [("count(//a) + count(//b)", "d", "xschedule"), ("count(//c)", "d", "simple")]
    )
    assert outcome.results[0].value == solo.value


def test_empty_request_list_rejected(db_tree):
    db, _ = db_tree
    with pytest.raises(PlanError):
        run_concurrent(db, [])
