"""Focused tests for XAssembly's R/S machinery."""

import pytest

from repro.algebra.context import EvalOptions
from repro.algebra.xassembly import XAssembly
from repro.algebra.base import Operator
from repro.algebra.pathinstance import PathInstance
from repro.storage.nodeid import make_nodeid, page_of, slot_of

from tests.paper_tree import PAGE_A, PAGE_C, PAGE_D, build_paper_tree


class ListSource(Operator):
    def __init__(self, ctx, items):
        super().__init__(ctx)
        self.items = items

    def _produce(self):
        yield from self.items


def full(nid, s_r=2, n_l=None):
    return PathInstance(0, n_l, False, s_r, slot_of(nid), False, page_no=page_of(nid))


def drain(assembly):
    assembly.open()
    out = []
    while True:
        item = assembly.next()
        if item is None:
            assembly.close()
            return out
        out.append(make_nodeid(item.page_no, item.slot))


def test_full_instances_pass_through(paper_tree=None):
    paper = build_paper_tree()
    ctx = paper.db.make_context()
    items = [full(paper.nodes["a3"]), full(paper.nodes["c4"])]
    assembly = XAssembly(ctx, ListSource(ctx, items), path_len=2)
    assert drain(assembly) == [paper.nodes["a3"], paper.nodes["c4"]]


def test_final_duplicates_eliminated_via_r():
    paper = build_paper_tree()
    ctx = paper.db.make_context()
    items = [full(paper.nodes["a3"])] * 3
    assembly = XAssembly(ctx, ListSource(ctx, items), path_len=2)
    assert drain(assembly) == [paper.nodes["a3"]]
    assert ctx.stats.duplicates_suppressed == 2


def test_right_incomplete_goes_to_schedule_queue():
    paper = build_paper_tree()
    ctx = paper.db.make_context()

    class FakeSchedule:
        def __init__(self):
            self.added = []

        def add_from_assembly(self, s_l, n_l, s_r, target):
            self.added.append((s_l, n_l, s_r, target))

    schedule = FakeSchedule()
    # paused at border d2 (cluster d) while processing step 1
    paused = PathInstance(
        0, paper.nodes["d1"], False, 0, slot_of(paper.nodes["d2"]), True, page_no=PAGE_D
    )
    assembly = XAssembly(ctx, ListSource(ctx, [paused]), path_len=2, schedule=schedule)
    assert drain(assembly) == []
    assert schedule.added == [(0, paper.nodes["d1"], 0, paper.nodes["a1"])]


def test_same_junction_not_scheduled_twice():
    paper = build_paper_tree()
    ctx = paper.db.make_context()

    class FakeSchedule:
        def __init__(self):
            self.added = []

        def add_from_assembly(self, **kwargs):
            self.added.append(kwargs)

    schedule = FakeSchedule()
    paused = PathInstance(
        0, paper.nodes["d1"], False, 0, slot_of(paper.nodes["d2"]), True, page_no=PAGE_D
    )
    again = PathInstance(
        0, paper.nodes["d1"], False, 0, slot_of(paper.nodes["d2"]), True, page_no=PAGE_D
    )
    assembly = XAssembly(ctx, ListSource(ctx, [paused, again]), path_len=2, schedule=schedule)
    drain(assembly)
    assert len(schedule.added) == 1
    assert ctx.stats.duplicates_suppressed == 1


def test_left_incomplete_merges_when_junction_proven():
    """An S-resident speculative result activates when its left end enters R."""
    paper = build_paper_tree()
    ctx = paper.db.make_context()
    # speculative: "if a1 is reachable at step 1, a3 is a result" (Table 1 row 9)
    speculative = PathInstance(
        1, paper.nodes["a1"], True, 2, slot_of(paper.nodes["a3"]), False, page_no=PAGE_A
    )
    # real paused instance proving (1, a1): d1 -> step 1 paused at d2
    paused = PathInstance(
        0, paper.nodes["d1"], False, 1, slot_of(paper.nodes["d2"]), True, page_no=PAGE_D
    )
    assembly = XAssembly(ctx, ListSource(ctx, [speculative, paused]), path_len=2)
    assert drain(assembly) == [paper.nodes["a3"]]
    assert ctx.stats.merges == 1


def test_left_incomplete_activates_immediately_if_already_proven():
    paper = build_paper_tree()
    ctx = paper.db.make_context()
    paused = PathInstance(
        0, paper.nodes["d1"], False, 1, slot_of(paper.nodes["d2"]), True, page_no=PAGE_D
    )
    speculative = PathInstance(
        1, paper.nodes["a1"], True, 2, slot_of(paper.nodes["a3"]), False, page_no=PAGE_A
    )
    assembly = XAssembly(ctx, ListSource(ctx, [paused, speculative]), path_len=2)
    assert drain(assembly) == [paper.nodes["a3"]]


def test_cascading_activation_across_clusters():
    """A speculative fragment ending at another border cascades through R."""
    paper = build_paper_tree()
    ctx = paper.db.make_context()
    # fragment 1: if d3 target (c1) reachable at step 0 -> paused again at
    # step 1... modelled here: left-incomplete ending right-incomplete
    frag = PathInstance(
        0, paper.nodes["c1"], True, 1, slot_of(paper.nodes["d3"]), True, page_no=PAGE_D
    )
    # wait: frag's right border d3 targets c1; use a1 chain instead to keep
    # junctions distinct: left end (0, a1), right end border d2 -> target a1?
    # Simpler: fragment left (0, c1) right-incomplete at d2 -> junction a1
    frag = PathInstance(
        0, paper.nodes["c1"], True, 1, slot_of(paper.nodes["d2"]), True, page_no=PAGE_D
    )
    # fragment 2: if a1 reachable at step 1 -> full result a3
    frag2 = PathInstance(
        1, paper.nodes["a1"], True, 2, slot_of(paper.nodes["a3"]), False, page_no=PAGE_A
    )
    # proof: (0, c1) is reachable
    proof = PathInstance(
        0, paper.nodes["d1"], False, 0, slot_of(paper.nodes["d3"]), True, page_no=PAGE_D
    )
    assembly = XAssembly(ctx, ListSource(ctx, [frag, frag2, proof]), path_len=2)
    assert drain(assembly) == [paper.nodes["a3"]]
    assert ctx.stats.merges == 2


def test_memory_limit_triggers_fallback():
    paper = build_paper_tree()
    ctx = paper.db.make_context(EvalOptions(memory_limit=1))
    fragments = [
        PathInstance(
            1, paper.nodes["a1"], True, 2, slot_of(paper.nodes["a3"]), False, page_no=PAGE_A
        ),
        PathInstance(
            1, paper.nodes["c1"], True, 2, slot_of(paper.nodes["c4"]), False, page_no=PAGE_C
        ),
    ]
    assembly = XAssembly(ctx, ListSource(ctx, fragments), path_len=2)
    drain(assembly)
    assert ctx.fallback
    assert ctx.stats.fallbacks == 1
    assert assembly._s_size == 0


def test_descendant_root_opt_skips_step1_keys():
    paper = build_paper_tree()
    ctx = paper.db.make_context()
    paused = PathInstance(
        0, paper.nodes["d1"], False, 1, slot_of(paper.nodes["d2"]), True, page_no=PAGE_D
    )
    assembly = XAssembly(
        ctx, ListSource(ctx, [paused]), path_len=2, descendant_root_opt=True
    )
    drain(assembly)
    # step-1 junction keys are implicit: nothing stored in R
    assert len(assembly._r) == 0
