"""Guard: the datapath's hot classes must stay ``__slots__``-only.

Per-instance dicts on objects created thousands of times per query
(path instances, queue entries, records) or touched per navigation hop
(operators, pages, frames) cost both memory and attribute-lookup time.
This test pins the optimisation down so a refactor cannot silently
reintroduce ``__dict__`` on the hot path.
"""

import repro.algebra.fullnav  # noqa: F401  (registers Operator subclasses)
import repro.algebra.multiscan  # noqa: F401
from repro.algebra.base import Operator
from repro.algebra.misc import ContextScan, DuplicateElimination
from repro.algebra.pathinstance import PathInstance
from repro.algebra.unnestmap import UnnestMap
from repro.algebra.xassembly import XAssembly
from repro.algebra.xscan import XScan
from repro.algebra.xschedule import XSchedule, _QEntry
from repro.algebra.xstep import XStep
from repro.sim.clock import SimClock
from repro.storage.buffer import BufferManager, Frame
from repro.storage.page import Page
from repro.storage.record import BorderRecord, CoreRecord
from repro.storage.synopsis import ClusterSynopsis

HOT_CLASSES = (
    Operator,
    XScan,
    XSchedule,
    XStep,
    XAssembly,
    UnnestMap,
    ContextScan,
    DuplicateElimination,
    _QEntry,
    PathInstance,
    CoreRecord,
    BorderRecord,
    Page,
    Frame,
    BufferManager,
    SimClock,
    ClusterSynopsis,
)


def _all_subclasses(cls):
    for sub in cls.__subclasses__():
        yield sub
        yield from _all_subclasses(sub)


def test_hot_classes_define_slots():
    for cls in HOT_CLASSES:
        assert "__slots__" in vars(cls), f"{cls.__name__} lost its __slots__"


def test_hot_instances_have_no_dict():
    """``__slots__`` only works if every class in the MRO plays along."""
    for cls in (PathInstance, CoreRecord, BorderRecord, Page, Frame, SimClock):
        assert "__dict__" not in dir(cls) or not any(
            "__dict__" in vars(c) for c in cls.__mro__ if c is not object
        ), f"{cls.__name__} instances grew a __dict__"


def test_every_operator_subclass_defines_slots():
    """A single slotless subclass gives its instances a dict again; catch
    new operators at review time, not in a profile."""
    for cls in _all_subclasses(Operator):
        if not cls.__module__.startswith("repro."):
            continue  # test stubs may stay slotless
        assert "__slots__" in vars(cls), (
            f"Operator subclass {cls.__module__}.{cls.__name__} must define "
            "__slots__ (use an empty tuple if it adds no attributes)"
        )
