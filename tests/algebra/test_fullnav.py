"""Tests for full-tree navigation (Simple method / fallback mode)."""

import pytest

from repro.axes import Axis
from repro.algebra.fullnav import exists_path, full_axis
from repro.algebra.steps import CompiledNodeTest, CompiledStep
from repro.storage.nodeid import make_nodeid, page_of, slot_of

from tests.paper_tree import build_paper_tree


@pytest.fixture()
def paper():
    return build_paper_tree()


def run_axis(paper, name, axis, resumed=False):
    ctx = paper.db.make_context()
    nid = paper.nodes[name]
    reverse = {v: k for k, v in paper.nodes.items()}
    out = [
        reverse[make_nodeid(p, s)]
        for p, s in full_axis(ctx, page_of(nid), slot_of(nid), axis, resumed=resumed)
    ]
    ctx.release()
    return out, ctx


def test_child_crosses_borders(paper):
    names, ctx = run_axis(paper, "d1", Axis.CHILD)
    assert names == ["a2", "c2", "d4"]
    assert ctx.stats.buffer_misses >= 3  # d, a, c pages


def test_descendant_covers_whole_tree(paper):
    names, _ = run_axis(paper, "d1", Axis.DESCENDANT)
    assert set(names) == {"a2", "a3", "c2", "c3", "c4", "d4", "b2"}


def test_descendant_in_document_order(paper):
    names, _ = run_axis(paper, "d1", Axis.DESCENDANT)
    assert names == ["a2", "a3", "c2", "c3", "c4", "d4", "b2"]


def test_ancestor_crosses_up(paper):
    names, _ = run_axis(paper, "a3", Axis.ANCESTOR)
    assert names == ["a2", "d1"]


def test_following_sibling_across_clusters(paper):
    names, _ = run_axis(paper, "a2", Axis.FOLLOWING_SIBLING)
    assert names == ["c2", "d4"]


def test_preceding_sibling_across_clusters(paper):
    names, _ = run_axis(paper, "d4", Axis.PRECEDING_SIBLING)
    assert set(names) == {"a2", "c2"}


def test_abandoned_generator_releases_pins(paper):
    """Early termination (as in exists_path) must unfix everything."""
    ctx = paper.db.make_context()
    nid = paper.nodes["d1"]
    gen = full_axis(ctx, page_of(nid), slot_of(nid), Axis.DESCENDANT)
    next(gen)
    gen.close()
    assert ctx.buffer.n_resident >= 1
    # all frames unpinned: a full buffer sweep can evict everything
    for _ in range(ctx.buffer.capacity + 1):
        pass
    frame = ctx.buffer.fix(page_of(nid))
    ctx.buffer.unfix(frame)


def name_step(paper, name, axis=Axis.CHILD):
    tag = paper.db.tags.lookup(name)
    return CompiledStep(axis, CompiledNodeTest.compile("name", axis, tag))


def test_exists_path_true(paper):
    ctx = paper.db.make_context()
    nid = paper.nodes["d1"]
    steps = [name_step(paper, "A"), name_step(paper, "B")]
    assert exists_path(ctx, page_of(nid), slot_of(nid), steps)


def test_exists_path_false(paper):
    ctx = paper.db.make_context()
    nid = paper.nodes["d1"]
    steps = [name_step(paper, "C"), name_step(paper, "B")]
    assert not exists_path(ctx, page_of(nid), slot_of(nid), steps)


def test_exists_path_short_circuits(paper):
    """The first witness suffices: cluster b is never needed for /A."""
    ctx = paper.db.make_context()
    nid = paper.nodes["d1"]
    exists_path(ctx, page_of(nid), slot_of(nid), [name_step(paper, "A")])
    from tests.paper_tree import PAGE_B

    assert not ctx.buffer.is_resident(PAGE_B)
